//! Arrival-time propagation and critical-path extraction.

use std::borrow::Cow;
use std::collections::BTreeMap;

use agequant_cells::{CellLibrary, PartialEval};
use agequant_netlist::{NetDriver, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Load (fF) assumed on primary outputs (register/pipeline capture pin).
const OUTPUT_PORT_LOAD_FF: f64 = 1.2;

/// Constant values asserted on primary-input nets for case analysis.
///
/// The PrimeTime analogue is `set_case_analysis 0 [get_ports …]` on the
/// padded-away input bits (Section 6.1 (3) of the paper).
#[must_use]
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseAssignment {
    tied: BTreeMap<NetId, bool>,
}

impl CaseAssignment {
    /// An empty assignment: every input free (no case analysis).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ties one net to a constant. Re-tying a net overwrites the value.
    pub fn tie(&mut self, net: NetId, value: bool) {
        self.tied.insert(net, value);
    }

    /// Ties every net of a slice to zero (the padding case).
    pub fn tie_zero_all(&mut self, nets: &[NetId]) {
        for &n in nets {
            self.tie(n, false);
        }
    }

    /// Number of tied nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tied.len()
    }

    /// Whether no nets are tied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tied.is_empty()
    }

    /// The tied value of a net, if any.
    #[must_use]
    pub fn value(&self, net: NetId) -> Option<bool> {
        self.tied.get(&net).copied()
    }
}

/// One gate on a reported critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathElement {
    /// The gate's output net.
    pub net: NetId,
    /// Cell kind of the driving gate (`None` for a primary input).
    pub cell: Option<agequant_cells::CellKind>,
    /// Arrival time at the net, ps.
    pub arrival_ps: f64,
}

/// The result of one STA run.
#[must_use]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Critical-path delay, ps (0 if every output is constant).
    pub critical_path_ps: f64,
    /// Arrival time per net; `None` for constant (deactivated) nets.
    pub arrival_ps: Vec<Option<f64>>,
    /// Nets whose case-propagated value is a known constant.
    pub constants: Vec<Option<bool>>,
    /// The worst path, input to output (empty if fully constant).
    pub critical_path: Vec<PathElement>,
    /// Arrival time per primary-output bus, worst bit, ps.
    pub output_arrivals: BTreeMap<String, f64>,
}

impl TimingReport {
    /// Whether a net is deactivated (constant) under the analyzed case.
    #[must_use]
    pub fn is_constant(&self, net: NetId) -> bool {
        self.constants[net.index()].is_some()
    }
}

/// A static-timing-analysis session binding a netlist to a
/// characterized cell library.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Sta<'a> {
    netlist: &'a Netlist,
    library: &'a CellLibrary,
    /// Per-net capacitive load, fF (library- and netlist-dependent).
    /// Borrowed when a caller reuses a precomputed vector across
    /// sessions, owned when [`Sta::new`] computes it on the spot.
    loads: Cow<'a, [f64]>,
}

impl<'a> Sta<'a> {
    /// Creates a session and precomputes per-net loads
    /// (fanout input capacitance plus port load on primary outputs).
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary) -> Self {
        let loads = Self::compute_loads(netlist, library);
        Sta {
            netlist,
            library,
            loads: Cow::Owned(loads),
        }
    }

    /// Creates a session from an already-computed load vector —
    /// exactly what [`Sta::new`] would compute via
    /// [`Sta::compute_loads`] for the same netlist and library. Lets
    /// an evaluation engine amortize the load pass over the many
    /// case-analysis calls of one aging level.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not have one entry per net.
    #[must_use]
    pub fn with_loads(netlist: &'a Netlist, library: &'a CellLibrary, loads: &'a [f64]) -> Self {
        assert_eq!(
            loads.len(),
            netlist.net_count(),
            "load vector does not match the netlist"
        );
        Sta {
            netlist,
            library,
            loads: Cow::Borrowed(loads),
        }
    }

    /// The per-net load vector [`Sta::new`] precomputes: fanout input
    /// capacitance plus the port load on primary outputs, fF.
    #[must_use]
    pub fn compute_loads(netlist: &Netlist, library: &CellLibrary) -> Vec<f64> {
        let mut loads = vec![0.0f64; netlist.net_count()];
        for gate in netlist.gates() {
            for &input in &gate.inputs {
                loads[input.index()] += library.input_cap(gate.kind);
            }
        }
        for out in netlist.primary_outputs() {
            loads[out.index()] += OUTPUT_PORT_LOAD_FF;
        }
        loads
    }

    /// The capacitive load on `net`, fF.
    #[must_use]
    pub fn load(&self, net: NetId) -> f64 {
        self.loads[net.index()]
    }

    /// The session's full per-net load vector, fF.
    #[must_use]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// STA without case analysis: all inputs free.
    pub fn analyze_uncompressed(&self) -> TimingReport {
        self.analyze(&CaseAssignment::new())
    }

    /// STA under a case assignment.
    ///
    /// Constants are propagated through the netlist first
    /// ([`CellKind::partial_eval`] semantics); a gate whose output is
    /// determined contributes no timing arc, and arrival times are the
    /// maximum over *non-constant* fanins of
    /// `arrival(fanin) + arc_delay(kind, pin, load(output))`.
    ///
    /// [`CellKind::partial_eval`]: agequant_cells::CellKind::partial_eval
    pub fn analyze(&self, case: &CaseAssignment) -> TimingReport {
        let n = self.netlist.net_count();
        let mut constants: Vec<Option<bool>> = vec![None; n];
        let mut arrival: Vec<Option<f64>> = vec![None; n];
        // `from[i]` = the fanin net that sets net i's arrival (for path trace).
        let mut from: Vec<Option<NetId>> = vec![None; n];

        // Seed primary inputs and netlist constants.
        for idx in 0..n {
            let net = NetId::from_index(idx);
            match self.netlist.driver(net) {
                NetDriver::PrimaryInput => {
                    if let Some(v) = case.value(net) {
                        constants[idx] = Some(v);
                    } else {
                        arrival[idx] = Some(0.0);
                    }
                }
                NetDriver::Constant(v) => constants[idx] = Some(v),
                NetDriver::Gate(_) => {}
            }
        }

        // Forward pass in topological order.
        let mut pins: Vec<Option<bool>> = Vec::with_capacity(3);
        for gate in self.netlist.gates() {
            let out = gate.output.index();
            pins.clear();
            pins.extend(gate.inputs.iter().map(|i| constants[i.index()]));
            if let PartialEval::Known(v) = gate.kind.partial_eval(&pins) {
                constants[out] = Some(v);
                continue;
            }
            let load = self.loads[out];
            let mut best: Option<(f64, NetId)> = None;
            for (pin, &input) in gate.inputs.iter().enumerate() {
                if constants[input.index()].is_some() {
                    continue; // deactivated arc
                }
                let t = arrival[input.index()]
                    .expect("non-constant fanin of reachable gate has an arrival")
                    + self.library.arc_delay(gate.kind, pin, load);
                if best.is_none_or(|(b, _)| t > b) {
                    best = Some((t, input));
                }
            }
            let (t, src) = best.expect("gate with unknown output has a live fanin");
            arrival[out] = Some(t);
            from[out] = Some(src);
        }

        // Collect per-output-bus worst arrivals and the global worst.
        let mut output_arrivals = BTreeMap::new();
        let mut worst: Option<(f64, NetId)> = None;
        for bus in self.netlist.output_buses() {
            let mut bus_worst = 0.0f64;
            for &net in &bus.nets {
                if let Some(t) = arrival[net.index()] {
                    bus_worst = bus_worst.max(t);
                    if worst.is_none_or(|(w, _)| t > w) {
                        worst = Some((t, net));
                    }
                }
            }
            output_arrivals.insert(bus.name.clone(), bus_worst);
        }

        // Trace the critical path back to a primary input.
        let mut critical_path = Vec::new();
        if let Some((_, mut net)) = worst {
            loop {
                let cell = match self.netlist.driver(net) {
                    NetDriver::Gate(g) => Some(self.netlist.gate(g).kind),
                    _ => None,
                };
                critical_path.push(PathElement {
                    net,
                    cell,
                    arrival_ps: arrival[net.index()].unwrap_or(0.0),
                });
                match from[net.index()] {
                    Some(prev) => net = prev,
                    None => break,
                }
            }
            critical_path.reverse();
        }

        TimingReport {
            critical_path_ps: worst.map_or(0.0, |(t, _)| t),
            arrival_ps: arrival,
            constants,
            critical_path,
            output_arrivals,
        }
    }
}

#[cfg(test)]
mod tests {
    use agequant_aging::{TechProfile, VthShift};
    use agequant_cells::{CellKind, ProcessLibrary};
    use agequant_netlist::NetlistBuilder;

    use super::*;

    fn fresh_lib() -> CellLibrary {
        ProcessLibrary::finfet14nm()
            .characterize(&TechProfile::INTEL14NM.derating(), VthShift::FRESH)
    }

    #[test]
    fn single_gate_arrival_matches_arc_delay() {
        let mut b = NetlistBuilder::new("one");
        let x = b.input_bus("x", 2);
        let y = b.gate(CellKind::And2, &[x[0], x[1]]);
        b.output_bus("y", &[y]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let sta = Sta::new(&netlist, &lib);
        let report = sta.analyze_uncompressed();
        // Worst pin arc at the output-port load.
        let expect = lib.worst_arc_delay(CellKind::And2, OUTPUT_PORT_LOAD_FF);
        assert!((report.critical_path_ps - expect).abs() < 1e-12);
        assert_eq!(report.critical_path.len(), 2); // input → gate output
    }

    #[test]
    fn chain_accumulates_delay() {
        let mut b = NetlistBuilder::new("chain");
        let x = b.input_bus("x", 1);
        let mut net = x[0];
        for _ in 0..5 {
            net = b.gate(CellKind::Inv, &[net]);
        }
        b.output_bus("y", &[net]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let sta = Sta::new(&netlist, &lib);
        let report = sta.analyze_uncompressed();
        let inner = lib.arc_delay(CellKind::Inv, 0, lib.input_cap(CellKind::Inv));
        let last = lib.arc_delay(CellKind::Inv, 0, OUTPUT_PORT_LOAD_FF);
        assert!((report.critical_path_ps - (4.0 * inner + last)).abs() < 1e-9);
        assert_eq!(report.critical_path.len(), 6);
    }

    #[test]
    fn case_analysis_kills_controlled_gates() {
        // y = (a & b) | c: tying a=0 makes the AND constant, so the
        // critical path becomes the single OR arc from c.
        let mut b = NetlistBuilder::new("case");
        let a = b.input_bus("a", 1);
        let bb = b.input_bus("b", 1);
        let c = b.input_bus("c", 1);
        let t = b.gate(CellKind::And2, &[a[0], bb[0]]);
        let y = b.gate(CellKind::Or2, &[t, c[0]]);
        b.output_bus("y", &[y]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let sta = Sta::new(&netlist, &lib);

        let full = sta.analyze_uncompressed();
        let mut case = CaseAssignment::new();
        case.tie(a[0], false);
        let cut = sta.analyze(&case);
        assert!(cut.critical_path_ps < full.critical_path_ps);
        assert!(cut.is_constant(t));
        assert!(!cut.is_constant(y));
        // With c also tied, the whole cone is constant: zero delay.
        case.tie(c[0], false);
        case.tie(bb[0], false);
        let dead = sta.analyze(&case);
        assert_eq!(dead.critical_path_ps, 0.0);
        assert!(dead.critical_path.is_empty());
    }

    #[test]
    fn tied_one_also_propagates() {
        // Tying one NAND input to 1 leaves the gate active; tying it
        // to 0 forces the output to constant 1.
        let mut b = NetlistBuilder::new("nand");
        let x = b.input_bus("x", 2);
        let y = b.gate(CellKind::Nand2, &[x[0], x[1]]);
        b.output_bus("y", &[y]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let sta = Sta::new(&netlist, &lib);

        let mut case1 = CaseAssignment::new();
        case1.tie(x[0], true);
        let r1 = sta.analyze(&case1);
        assert!(!r1.is_constant(y));
        assert!(r1.critical_path_ps > 0.0);

        let mut case0 = CaseAssignment::new();
        case0.tie(x[0], false);
        let r0 = sta.analyze(&case0);
        assert_eq!(r0.constants[y.index()], Some(true));
    }

    #[test]
    fn output_arrivals_reported_per_bus() {
        let mut b = NetlistBuilder::new("buses");
        let x = b.input_bus("x", 2);
        let fast = b.gate(CellKind::Inv, &[x[0]]);
        let s1 = b.gate(CellKind::Xor2, &[x[0], x[1]]);
        let slow = b.gate(CellKind::Xor2, &[s1, x[0]]);
        b.output_bus("fast", &[fast]);
        b.output_bus("slow", &[slow]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let sta = Sta::new(&netlist, &lib);
        let r = sta.analyze_uncompressed();
        assert!(r.output_arrivals["slow"] > r.output_arrivals["fast"]);
        assert!((r.critical_path_ps - r.output_arrivals["slow"]).abs() < 1e-12);
    }

    #[test]
    fn precomputed_loads_match_fresh_session() {
        let mut b = NetlistBuilder::new("reuse");
        let x = b.input_bus("x", 3);
        let t = b.gate(CellKind::And2, &[x[0], x[1]]);
        let y = b.gate(CellKind::Xor2, &[t, x[2]]);
        b.output_bus("y", &[y]);
        let netlist = b.finish();
        let lib = fresh_lib();

        let loads = Sta::compute_loads(&netlist, &lib);
        let fresh = Sta::new(&netlist, &lib);
        assert_eq!(fresh.loads(), loads.as_slice());

        let reused = Sta::with_loads(&netlist, &lib, &loads);
        let a = fresh.analyze_uncompressed();
        let b = reused.analyze_uncompressed();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "load vector")]
    fn mismatched_loads_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input_bus("x", 1);
        let y = b.gate(CellKind::Inv, &[x[0]]);
        b.output_bus("y", &[y]);
        let netlist = b.finish();
        let lib = fresh_lib();
        let short = vec![0.0];
        let _ = Sta::with_loads(&netlist, &lib, &short);
    }

    #[test]
    fn case_assignment_bookkeeping() {
        let mut c = CaseAssignment::new();
        assert!(c.is_empty());
        c.tie(NetId::from_index(3), true);
        c.tie_zero_all(&[NetId::from_index(1), NetId::from_index(2)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(NetId::from_index(3)), Some(true));
        assert_eq!(c.value(NetId::from_index(1)), Some(false));
        assert_eq!(c.value(NetId::from_index(9)), None);
    }
}
