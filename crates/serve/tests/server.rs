//! End-to-end tests over real sockets: bit-identity with the direct
//! engine, backpressure under saturation, graceful drain, and the
//! telemetry/metrics surface.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use agequant_aging::{VthShift, AGING_SWEEP_MV};
use agequant_fleet::{Decider, FleetConfig};
use agequant_serve::{plan_response, start, ServeConfig, ServerHandle};

/// A minimal blocking HTTP/1.1 client: one request per connection.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    writer.flush().expect("flush");

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        headers.insert(name.trim().to_lowercase(), value.trim().to_string());
    }
    let length: usize = headers
        .get("content-length")
        .expect("content-length")
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

fn test_config(chips: u32) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        fleet_chips: chips,
        fleet_seed: 7,
        ..ServeConfig::default()
    }
}

fn addr_of(handle: &ServerHandle) -> String {
    handle.addr().to_string()
}

#[test]
fn concurrent_clients_bit_identical_to_direct_engine() {
    let handle = start(test_config(8), FleetConfig::new(8, 7)).expect("start");
    let addr = addr_of(&handle);

    // The reference: an INDEPENDENT decider over the same fleet
    // config, never shared with the server. Whatever it decides for a
    // sweep level, the server must serialize byte-for-byte.
    let reference = Decider::from_config(&FleetConfig::new(8, 7)).expect("reference decider");
    let expected: Vec<String> = AGING_SWEEP_MV
        .iter()
        .map(|mv| {
            let decision = reference
                .decide_shift(VthShift::from_millivolts(*mv))
                .expect("reference decision");
            serde_json::to_string(&plan_response(&reference, &decision)).expect("render")
        })
        .collect();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                AGING_SWEEP_MV
                    .iter()
                    .map(|mv| {
                        let (status, _, body) = request(
                            &addr,
                            "POST",
                            "/v1/plan",
                            Some(&format!("{{\"delta_vth_mv\": {mv}}}")),
                        );
                        assert_eq!(status, 200, "{body}");
                        body
                    })
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    for worker in workers {
        let bodies = worker.join().expect("client thread");
        assert_eq!(bodies, expected);
    }
    handle.shutdown_and_join();
}

/// The degradation-model surface: `GET /v1/models` lists the zoo,
/// `POST /v1/plan` with a `model` field answers from that model's
/// decider, an explicit `"model": "nbti"` is byte-identical to
/// omitting the field (the server default), and the per-model cache
/// split shows up in `/metrics`.
#[test]
fn model_selection_end_to_end() {
    let handle = start(test_config(4), FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);

    let (status, _, body) = request(&addr, "GET", "/v1/models", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"default\":\"nbti\""), "{body}");
    for name in ["nbti", "hci", "surrogate"] {
        assert!(body.contains(&format!("\"name\":\"{name}\"")), "{body}");
    }
    let (status, _, _) = request(&addr, "DELETE", "/v1/models", None);
    assert_eq!(status, 405);

    // Default-model responses are byte-identical with and without the
    // explicit field — the wire contract for pre-existing clients.
    let body_implicit = |mv: f64| {
        let (status, _, body) = request(
            &addr,
            "POST",
            "/v1/plan",
            Some(&format!("{{\"delta_vth_mv\": {mv}}}")),
        );
        assert_eq!(status, 200, "{body}");
        body
    };
    let body_with_model = |mv: f64, model: &str| {
        let (status, _, body) = request(
            &addr,
            "POST",
            "/v1/plan",
            Some(&format!(
                "{{\"delta_vth_mv\": {mv}, \"model\": \"{model}\"}}"
            )),
        );
        assert_eq!(status, 200, "{body}");
        body
    };
    for &mv in &AGING_SWEEP_MV {
        assert_eq!(body_implicit(mv), body_with_model(mv, "nbti"));
    }

    // Every zoo model answers; HCI shares the 14 nm profile with the
    // default, so its plans agree — what differs is the cache traffic.
    for &mv in &AGING_SWEEP_MV {
        assert_eq!(body_implicit(mv), body_with_model(mv, "hci"));
        let surrogate = body_with_model(mv, "surrogate");
        assert!(surrogate.contains("\"bucket\""), "{surrogate}");
    }

    // Unknown models are a 400 naming the zoo.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/plan",
        Some("{\"delta_vth_mv\": 10.0, \"model\": \"entropy\"}"),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("nbti, hci, surrogate"), "{body}");

    // The per-model split is visible on /metrics, and /v1/models now
    // reports the lazily built deciders as loaded.
    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for model in ["nbti", "hci"] {
        assert!(
            metrics.contains(&format!(
                "agequant_engine_model_cache_events_total{{model=\"{model}\",cache=\"plan\",event=\"miss\"}}"
            )),
            "{metrics}"
        );
    }
    assert!(
        metrics.contains("agequant_engine_cache_events_total{cache=\"plan\",event=\"hit\"}"),
        "aggregate series stays: {metrics}"
    );
    let (_, _, body) = request(&addr, "GET", "/v1/models", None);
    assert!(!body.contains("\"loaded\":false"), "{body}");

    handle.shutdown_and_join();
}

#[test]
fn plan_validates_its_input() {
    let handle = start(test_config(4), FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);
    let (status, _, body) = request(&addr, "POST", "/v1/plan", Some("{\"delta_vth_mv\": 400.0}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("outside the served range"), "{body}");
    let (status, _, _) = request(&addr, "POST", "/v1/plan", Some("not json"));
    assert_eq!(status, 400);
    let (status, _, _) = request(&addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(&addr, "DELETE", "/v1/plan", None);
    assert_eq!(status, 405);
    handle.shutdown_and_join();
}

#[test]
fn saturated_queue_returns_503_with_retry_after() {
    // One slow worker, a queue of one: concurrent requests MUST
    // overflow, and overflow must be a fast 503, not a hang.
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        debug_delay_ms: 300,
        deadline_ms: 10_000,
        ..test_config(4)
    };
    let handle = start(config, FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (status, headers, _) =
                    request(&addr, "POST", "/v1/plan", Some("{\"delta_vth_mv\": 10.0}"));
                (status, headers)
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .collect();
    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let rejected = outcomes.iter().filter(|(s, _)| *s == 503).count();
    assert!(ok >= 1, "someone must get through: {outcomes:?}");
    assert!(rejected >= 1, "queue of 1 must overflow: {outcomes:?}");
    for (status, headers) in &outcomes {
        if *status == 503 {
            assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));
        }
    }

    // The server is still healthy after shedding load.
    let (status, _, body) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(body.contains("agequant_queue_rejected_total"), "{body}");
    handle.shutdown_and_join();
}

#[test]
fn graceful_drain_finishes_accepted_work() {
    let config = ServeConfig {
        workers: 1,
        debug_delay_ms: 300,
        deadline_ms: 10_000,
        ..test_config(4)
    };
    let handle = start(config, FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);

    // A slow request in flight...
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            request(&addr, "POST", "/v1/plan", Some("{\"delta_vth_mv\": 20.0}"))
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    // ...then a drain request.
    let (status, _, body) = request(&addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");

    // The accepted request still completes with a real answer.
    let (status, _, body) = in_flight.join().expect("in-flight client");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"bucket\""), "{body}");

    let mut handle = handle;
    handle.join();
    // After the drain, new connections are refused or reset.
    let refused = match TcpStream::connect(&addr) {
        Err(_) => true,
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
            let mut buf = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            matches!(stream.read_to_end(&mut buf), Ok(0) | Err(_))
        }
    };
    assert!(refused, "drained server must not serve new requests");
}

#[test]
fn telemetry_summary_metrics_and_artifacts() {
    let dir = std::env::temp_dir().join(format!("agequant-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("journal.jsonl");
    let config = ServeConfig {
        journal: Some(journal.to_string_lossy().into_owned()),
        ..test_config(6)
    };
    let handle = start(config, FleetConfig::new(6, 7)).expect("start");
    let addr = addr_of(&handle);

    // Telemetry advances the hosted fleet to the reported epoch.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 2, \"epoch\": 3, \"delta_vth_mv\": 11.0}"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"epoch\":3"), "{body}");
    assert!(body.contains("reported_consistent"), "{body}");

    // A stale sample does not rewind the fleet.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 0, \"epoch\": 1}"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"stale\":true"), "{body}");
    assert!(body.contains("\"epoch\":3"), "{body}");

    // Unknown chips and runaway epochs are rejected.
    let (status, _, _) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 99, \"epoch\": 4}"),
    );
    assert_eq!(status, 404);
    let (status, _, _) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 0, \"epoch\": 999999}"),
    );
    assert_eq!(status, 400);

    let (status, _, body) = request(&addr, "GET", "/v1/fleet/summary", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"chips\": 6"), "{body}");

    let (status, _, body) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        body.contains("agequant_http_requests_total{endpoint=\"telemetry\",code=\"2xx\"} 2"),
        "{body}"
    );
    assert!(
        body.contains("agequant_http_request_duration_seconds_bucket"),
        "{body}"
    );
    assert!(
        body.contains("agequant_engine_cache_events_total"),
        "{body}"
    );

    handle.shutdown_and_join();

    // The journal the server wrote is well-formed JSONL with the
    // epoch-0 plans and the telemetry-driven events.
    let text = std::fs::read_to_string(&journal).expect("journal file");
    let events = agequant_fleet::journal::from_jsonl(&text).expect("journal parses");
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| e.epoch == 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// The weight-memory axis over the wire: `/v1/plan` gains a `memory`
/// projection, `/v1/memory/summary` reports the hosted fleet's
/// rollup, telemetry-driven epochs accrue re-encodes, and `/metrics`
/// exports the memory series.
#[test]
fn memory_axis_wire_surface() {
    let mut fleet_config = FleetConfig::new(8, 7);
    fleet_config.memory = Some(agequant_mem::MemoryConfig::demo());
    let handle = start(test_config(8), fleet_config).expect("start");
    let addr = addr_of(&handle);

    // Plans carry the memory projection, and the mitigation math is
    // visible on the wire: the re-encoded 10-year failure probability
    // is strictly below the unmitigated one.
    #[derive(serde::Deserialize)]
    struct PlanMemory {
        asymmetry: f64,
        failure_prob_10y: f64,
        failure_prob_10y_reencoded: f64,
    }
    #[derive(serde::Deserialize)]
    struct PlanBody {
        memory: Option<PlanMemory>,
    }
    let (status, _, body) = request(&addr, "POST", "/v1/plan", Some("{\"delta_vth_mv\": 30.0}"));
    assert_eq!(status, 200, "{body}");
    let plan: PlanBody = serde_json::from_str(&body).expect("plan parses");
    let memory = plan.memory.expect("plan has memory projection");
    assert!((0.0..=1.0).contains(&memory.asymmetry), "{body}");
    assert!(
        memory.failure_prob_10y_reencoded < memory.failure_prob_10y,
        "re-encoding must project lower failure probability: {} vs {}",
        memory.failure_prob_10y_reencoded,
        memory.failure_prob_10y
    );

    // The summary endpoint reports every chip tracked, fresh at epoch 0.
    let (status, _, body) = request(&addr, "GET", "/v1/memory/summary", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cell_model\""), "{body}");
    assert!(body.contains("\"tracked\":8"), "{body}");
    assert!(body.contains("\"reencodes\":0"), "{body}");

    // Telemetry advances the hosted fleet far enough that the decider
    // orders re-encodes; the rollup and the metrics see them.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 0, \"epoch\": 24}"),
    );
    assert_eq!(status, 200, "{body}");
    #[derive(serde::Deserialize)]
    struct FleetRollup {
        reencodes: u64,
    }
    #[derive(serde::Deserialize)]
    struct MemorySummaryBody {
        fleet: FleetRollup,
    }
    let (status, _, body) = request(&addr, "GET", "/v1/memory/summary", None);
    assert_eq!(status, 200, "{body}");
    let summary: MemorySummaryBody = serde_json::from_str(&body).expect("summary parses");
    let reencodes = summary.fleet.reencodes;
    assert!(reencodes > 0, "24 epochs must trigger re-encodes: {body}");

    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("agequant_memory_reencodes_total {reencodes}")),
        "{metrics}"
    );
    assert!(
        metrics.contains("agequant_memory_degraded_chips"),
        "{metrics}"
    );
    assert!(
        metrics.contains("agequant_memory_worst_failure_prob"),
        "{metrics}"
    );
    assert!(
        metrics.contains("endpoint=\"memory_summary\",code=\"2xx\"} 2"),
        "{metrics}"
    );

    handle.shutdown_and_join();
}

/// EQUIVALENCE GUARD — a server without the memory axis answers
/// `/v1/plan` byte-identically to the pre-memory build (committed
/// fixture), keeps `/metrics` free of memory series, and 404s the
/// memory summary exactly like any unknown route.
#[test]
fn memoryless_server_keeps_pre_memory_wire_bytes() {
    let handle = start(test_config(8), FleetConfig::new(8, 7)).expect("start");
    let addr = addr_of(&handle);

    let fixture = include_str!("fixtures/pre-mem-plan.jsonl");
    for (line, mv) in fixture.lines().zip([0.0f64, 12.5, 30.0, 47.0]) {
        let (status, _, body) = request(
            &addr,
            "POST",
            "/v1/plan",
            Some(&format!("{{\"delta_vth_mv\": {mv}}}")),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, line, "plan wire bytes diverged at {mv} mV");
    }

    let (status, _, body) = request(&addr, "GET", "/v1/memory/summary", None);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("memory axis disabled"), "{body}");

    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        !metrics.contains("agequant_memory_"),
        "memory series must not appear on a memoryless server: {metrics}"
    );

    handle.shutdown_and_join();
}

/// BIT-IDENTITY — `POST /v1/plan/batch` answers each element with the
/// exact bytes the corresponding single `POST /v1/plan` call would
/// have produced, including per-element errors, assembled as
/// `{"results":[{"status":N,"body":...},...]}`.
#[test]
fn plan_batch_is_bit_identical_to_single_calls() {
    let handle = start(test_config(8), FleetConfig::new(8, 7)).expect("start");
    let addr = addr_of(&handle);

    // A deliberately mixed batch: plans from several models, a
    // constraint override, an out-of-range level, and an unknown model
    // — errors must stay per-element, not fail the batch.
    let elements = [
        "{\"delta_vth_mv\": 0.0}",
        "{\"delta_vth_mv\": 12.5}",
        "{\"delta_vth_mv\": 30.0, \"model\": \"surrogate\"}",
        "{\"delta_vth_mv\": 47.0, \"constraint_factor\": 1.1}",
        "{\"delta_vth_mv\": 400.0}",
        "{\"delta_vth_mv\": 10.0, \"model\": \"entropy\"}",
    ];

    // The reference bytes come from the live single-call endpoint, so
    // the comparison pins the two code paths to each other.
    let mut expected = String::from("{\"results\":[");
    for (i, element) in elements.iter().enumerate() {
        let (status, _, body) = request(&addr, "POST", "/v1/plan", Some(element));
        if i > 0 {
            expected.push(',');
        }
        expected.push_str(&format!("{{\"status\":{status},\"body\":{body}}}"));
    }
    expected.push_str("]}");

    let batch_body = format!("[{}]", elements.join(","));
    let (status, _, body) = request(&addr, "POST", "/v1/plan/batch", Some(&batch_body));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "batch elements diverged from single calls");

    // An empty batch is a well-formed no-op, a non-array body is a 400,
    // and the endpoint shows up under its own metrics label.
    let (status, _, body) = request(&addr, "POST", "/v1/plan/batch", Some("[]"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "{\"results\":[]}");
    let (status, _, _) = request(
        &addr,
        "POST",
        "/v1/plan/batch",
        Some("{\"delta_vth_mv\": 1}"),
    );
    assert_eq!(status, 400);
    let (status, _, _) = request(&addr, "DELETE", "/v1/plan/batch", None);
    assert_eq!(status, 405);
    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("endpoint=\"plan_batch\",code=\"2xx\"} 2"),
        "{metrics}"
    );

    handle.shutdown_and_join();
}

/// The autopilot over the wire: enrollment arms the hosted fleet,
/// telemetry answers carry the regime and next-sample cadence hint
/// plus the report-vs-model residual, the summary endpoint reports
/// the census and ledger, and `/metrics` exports the regime gauges,
/// budget gauge, and residual EWMA.
#[test]
fn autopilot_wire_surface() {
    let handle = start(test_config(6), FleetConfig::new(6, 7)).expect("start");
    let addr = addr_of(&handle);

    // Before enrollment: the summary 404s, telemetry has no hint, and
    // no autopilot series exist — the pre-autopilot surface.
    let (status, _, body) = request(&addr, "GET", "/v1/autopilot/summary", None);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("not enrolled"), "{body}");
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 1, \"epoch\": 0}"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(!body.contains("\"autopilot\""), "{body}");
    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(!metrics.contains("agequant_autopilot_"), "{metrics}");
    assert!(
        metrics.contains("agequant_telemetry_residual_mv"),
        "{metrics}"
    );

    // An implausible controller is rejected with the violation named.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/autopilot/enroll",
        Some("{\"budget_messages_per_epoch\": 100, \"budget_burst\": 1}"),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("burst"), "{body}");

    // Enrollment arms every hosted chip.
    let (status, _, body) = request(&addr, "POST", "/v1/autopilot/enroll", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"enrolled\":6"), "{body}");
    assert!(body.contains("\"already_armed\":false"), "{body}");

    // Telemetry now advances the closed loop and answers with the
    // cadence hint and the residual it fed the rate estimator.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/telemetry",
        Some("{\"chip\": 0, \"epoch\": 8, \"delta_vth_mv\": 25.0}"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"autopilot\":{\"regime\":\""), "{body}");
    assert!(body.contains("\"next_sample_epoch\":"), "{body}");
    assert!(body.contains("\"residual_mv\":"), "{body}");

    // The summary reports the full census and the controller config.
    let (status, _, body) = request(&addr, "GET", "/v1/autopilot/summary", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"config\":{"), "{body}");
    assert!(body.contains("\"enrolled\":6"), "{body}");
    assert!(body.contains("\"budget_tokens\":"), "{body}");

    // /metrics exports the regime census, budget, and message ledger.
    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    for regime in ["calm", "watch", "intervene"] {
        assert!(
            metrics.contains(&format!(
                "agequant_autopilot_regime_chips{{regime=\"{regime}\"}}"
            )),
            "{metrics}"
        );
    }
    assert!(
        metrics.contains("agequant_autopilot_budget_tokens"),
        "{metrics}"
    );
    assert!(
        metrics.contains("agequant_autopilot_messages_total{outcome=\"granted\"}"),
        "{metrics}"
    );

    // Re-enrollment is idempotent and says so.
    let (status, _, body) = request(&addr, "POST", "/v1/autopilot/enroll", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"already_armed\":true"), "{body}");

    handle.shutdown_and_join();
}
