//! End-to-end tests for the readiness-polled connection plane:
//! pipelining byte-identity, the wire-speed table counters, the
//! central idle keep-alive sweep, and a many-idle-connection drain.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use agequant_aging::{VthShift, AGING_SWEEP_MV};
use agequant_fleet::{Decider, FleetConfig};
use agequant_serve::{plan_response, start, ServeConfig, ServerHandle};

fn test_config(chips: u32) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        fleet_chips: chips,
        fleet_seed: 7,
        ..ServeConfig::default()
    }
}

fn addr_of(handle: &ServerHandle) -> String {
    handle.addr().to_string()
}

/// Reads one keep-alive response off `reader`, returning
/// `(status, headers, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, HashMap<String, String>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        headers.insert(name.trim().to_lowercase(), value.trim().to_string());
    }
    let length: usize = headers
        .get("content-length")
        .expect("content-length")
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf-8"))
}

/// One-shot `connection: close` request, for control-plane calls.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// The value of a single-line Prometheus series, from `/metrics` text.
fn metric_value(metrics: &str, series: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

/// A pipelined burst — many requests written before any response is
/// read — must answer every request, in order, with exactly the bytes
/// the direct engine produces. This is the wire-speed path's bread
/// and butter: buffered pipelined bytes never raise another poll
/// event, so only a parser that re-runs after each completion passes.
#[test]
fn pipelined_burst_is_bit_identical_and_counts_table_hits() {
    let handle = start(test_config(8), FleetConfig::new(8, 7)).expect("start");
    let addr = addr_of(&handle);

    let reference = Decider::from_config(&FleetConfig::new(8, 7)).expect("reference decider");
    let expected: Vec<String> = AGING_SWEEP_MV
        .iter()
        .map(|mv| {
            let decision = reference
                .decide_shift(VthShift::from_millivolts(*mv))
                .expect("reference decision");
            serde_json::to_string(&plan_response(&reference, &decision)).expect("render")
        })
        .collect();

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut burst = String::new();
    for mv in AGING_SWEEP_MV {
        let body = format!("{{\"delta_vth_mv\": {mv}}}");
        burst.push_str(&format!(
            "POST /v1/plan HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    writer.write_all(burst.as_bytes()).expect("write burst");

    let mut reader = BufReader::new(stream);
    for expected_body in &expected {
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, expected_body, "pipelined body diverged");
    }
    drop(reader);
    drop(writer);

    let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let hits = metric_value(&metrics, "agequant_serve_table_hits_total")
        .expect("table hit counter exported");
    assert!(
        hits >= AGING_SWEEP_MV.len() as f64,
        "expected the whole burst to hit the table, counted {hits}"
    );
    // Per-endpoint latency evidence that the loop observed the burst.
    assert!(
        metrics.contains("agequant_http_request_duration_seconds_count{endpoint=\"plan\"}"),
        "plan latency histogram missing"
    );
    handle.shutdown_and_join();
}

/// Requests the table cannot answer — constraint overrides — miss the
/// table and fall to the worker path, and both counters say so.
#[test]
fn table_misses_are_counted_for_live_path_requests() {
    let handle = start(test_config(8), FleetConfig::new(8, 7)).expect("start");
    let addr = addr_of(&handle);

    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/plan",
        Some("{\"delta_vth_mv\": 12.5, \"constraint_factor\": 1.1}"),
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = request(&addr, "POST", "/v1/plan", Some("{\"delta_vth_mv\": 12.5}"));
    assert_eq!(status, 200, "{body}");

    let (_, _, metrics) = request(&addr, "GET", "/metrics", None);
    let hits = metric_value(&metrics, "agequant_serve_table_hits_total").expect("hits exported");
    let misses =
        metric_value(&metrics, "agequant_serve_table_misses_total").expect("misses exported");
    assert!(hits >= 1.0, "plain plan should hit the table: {hits}");
    assert!(
        misses >= 1.0,
        "constraint override should miss the table: {misses}"
    );
    handle.shutdown_and_join();
}

/// The loop's central sweep closes idle keep-alive connections after
/// `keep_alive_secs` — the regression test for idle bookkeeping now
/// living in one place instead of per-connection threads.
#[test]
fn idle_keep_alive_connections_are_swept() {
    let config = ServeConfig {
        keep_alive_secs: 1,
        ..test_config(4)
    };
    let handle = start(config, FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    write!(
        writer,
        "GET /healthz HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\n\r\n"
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    // Now idle. The server owes us a close shortly after the 1s idle
    // limit; a read returning 0 bytes is the FIN.
    let started = Instant::now();
    let mut buf = [0u8; 64];
    let n = reader.read(&mut buf).expect("await server close");
    assert_eq!(n, 0, "server should close the idle connection");
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(500) && waited < Duration::from_secs(8),
        "idle sweep fired at {waited:?}, expected shortly after the 1s limit"
    );
    handle.shutdown_and_join();
}

/// Hundreds of idle keep-alive connections cost the server an open
/// socket each — no thread stacks — and a drain closes every one of
/// them promptly. (The 10k-connection memory-flatness assertion runs
/// in `BENCH_serve`, where the fd budget is controlled.)
#[test]
fn many_idle_connections_report_and_drain_cleanly() {
    let handle = start(test_config(4), FleetConfig::new(4, 7)).expect("start");
    let addr = addr_of(&handle);

    const IDLE: usize = 300;
    let conns: Vec<TcpStream> = (0..IDLE)
        .map(|_| {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            stream
        })
        .collect();

    // Give the accept loop a beat to adopt the whole batch, then the
    // gauge must see them all (+1 for the metrics probe itself).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, metrics) = request(&addr, "GET", "/metrics", None);
        assert_eq!(status, 200);
        let open = metric_value(&metrics, "agequant_serve_open_connections")
            .expect("open-connection gauge exported");
        if open >= IDLE as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauge stuck at {open} with {IDLE} idle connections open"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, _, body) = request(&addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    let mut handle = handle;
    let drained = Instant::now();
    handle.join();
    assert!(
        drained.elapsed() < Duration::from_secs(15),
        "drain with {IDLE} idle connections took {:?}",
        drained.elapsed()
    );

    // Every idle connection got a FIN (or RST) rather than a hang.
    for stream in conns {
        let mut reader = stream;
        let mut buf = [0u8; 16];
        match reader.read(&mut buf) {
            Ok(n) => assert_eq!(n, 0, "expected EOF on a drained idle connection"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                ),
                "unexpected error draining idle connection: {e}"
            ),
        }
    }
}
