//! The `agequant-serve` CLI: run the compression-decision server.
//!
//! ```text
//! agequant-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!                [--max-mv MV] [--journal FILE] [--checkpoint FILE]
//!                [--write-config FILE] [--deadline-ms MS]
//!                [--keep-alive-secs S] [--fleet-chips N]
//!                [--fleet-seed SEED] [--model nbti|hci|surrogate]
//!                [--memory] [--debug-delay-ms MS]
//! ```
//!
//! The process prints `listening on ADDR` once ready, then blocks
//! until `POST /v1/shutdown` drains it. `--write-config` saves the
//! effective [`ServeConfig`] artifact (what lint SV001 checks);
//! `--checkpoint` saves the hosted fleet's final state at drain so
//! `agequant-lint --fleet-state ... --fleet-journal ...` can verify
//! the journal the server wrote.

use std::process::ExitCode;

use agequant_aging::ModelSpec;
use agequant_fleet::FleetConfig;
use agequant_serve::{start, write_checkpoint, ServeConfig};

fn usage() -> &'static str {
    "usage: agequant-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
     \x20                    [--max-mv MV] [--journal FILE] [--checkpoint FILE]\n\
     \x20                    [--write-config FILE] [--deadline-ms MS]\n\
     \x20                    [--keep-alive-secs S] [--fleet-chips N]\n\
     \x20                    [--fleet-seed SEED] [--model nbti|hci|surrogate]\n\
     \x20                    [--memory] [--debug-delay-ms MS]"
}

struct Options {
    config: ServeConfig,
    checkpoint: Option<String>,
    write_config: Option<String>,
    model: Option<ModelSpec>,
    memory: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        config: ServeConfig::default(),
        checkpoint: None,
        write_config: None,
        model: None,
        memory: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage().to_string());
        }
        if flag == "--memory" {
            options.memory = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let parse = |what: &str| format!("{flag}: {what:?} does not parse\n{}", usage());
        match flag.as_str() {
            "--addr" => options.config.addr.clone_from(value),
            "--workers" => options.config.workers = value.parse().map_err(|_| parse(value))?,
            "--queue-depth" => {
                options.config.queue_depth = value.parse().map_err(|_| parse(value))?;
            }
            "--max-mv" => options.config.max_mv = value.parse().map_err(|_| parse(value))?,
            "--journal" => options.config.journal = Some(value.clone()),
            "--checkpoint" => options.checkpoint = Some(value.clone()),
            "--write-config" => options.write_config = Some(value.clone()),
            "--deadline-ms" => {
                options.config.deadline_ms = value.parse().map_err(|_| parse(value))?;
            }
            "--keep-alive-secs" => {
                options.config.keep_alive_secs = value.parse().map_err(|_| parse(value))?;
            }
            "--fleet-chips" => {
                options.config.fleet_chips = value.parse().map_err(|_| parse(value))?;
            }
            "--fleet-seed" => {
                options.config.fleet_seed = value.parse().map_err(|_| parse(value))?;
            }
            "--model" => {
                options.model = Some(ModelSpec::by_name(value).ok_or_else(|| {
                    format!(
                        "unknown model {value:?}; options: {}\n{}",
                        ModelSpec::NAMES.join(", "),
                        usage()
                    )
                })?);
            }
            "--debug-delay-ms" => {
                options.config.debug_delay_ms = value.parse().map_err(|_| parse(value))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(options)
}

fn run(args: &[String]) -> Result<(), String> {
    let options = parse_args(args)?;
    options.config.validate().map_err(|e| e.to_string())?;
    if let Some(path) = &options.write_config {
        agequant_fleet::persist::atomic_write(
            std::path::Path::new(path),
            options.config.to_json().as_bytes(),
        )
        .map_err(|e| format!("{path}: {e}"))?;
    }
    let mut fleet_config = FleetConfig::new(options.config.fleet_chips, options.config.fleet_seed);
    fleet_config.flow.model = options.model;
    if options.memory {
        fleet_config.memory = Some(agequant_mem::MemoryConfig::demo());
    }
    let mut handle = start(options.config, fleet_config).map_err(|e| e.to_string())?;
    println!("listening on {}", handle.addr());
    handle.join();
    if let Some(path) = &options.checkpoint {
        write_checkpoint(&handle, path).map_err(|e| e.to_string())?;
        println!("checkpoint written to {path}");
    }
    println!("drained");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
