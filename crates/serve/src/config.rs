//! Server configuration: the artifact `agequant-serve` runs from and
//! saves, and the one lint code SV001 validates.
//!
//! [`ServeConfig::violations`] is the single source of truth for what
//! makes a configuration valid — [`ServeConfig::validate`] and the
//! lint share it, so the running server and the static checker cannot
//! drift.

use std::net::SocketAddr;

use agequant_aging::AGING_SWEEP_MV;
use serde::{Deserialize, Serialize};

use crate::ServeError;

/// Everything the server needs to run, serializable as the saved
/// server-config artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Listen address, `host:port`. Port 0 binds an ephemeral port.
    pub addr: String,
    /// Worker threads deciding queued requests.
    pub workers: u32,
    /// Bounded job-queue capacity; a full queue answers
    /// `503 Retry-After` instead of buffering without limit.
    pub queue_depth: u32,
    /// Largest ΔVth (millivolts) `/v1/plan` accepts. Bounded by the
    /// characterized library sweep: the engine has no data past it.
    pub max_mv: f64,
    /// Telemetry journal path (JSON lines, appended live).
    pub journal: Option<String>,
    /// Per-request deadline: a request not answered in this window
    /// gets `504`, and a worker reaching an expired job drops it
    /// instead of burning engine time on an abandoned reply.
    pub deadline_ms: u64,
    /// Keep-alive idle timeout per connection, seconds.
    pub keep_alive_secs: u64,
    /// Chips in the server-hosted fleet telemetry ingests into.
    pub fleet_chips: u32,
    /// Seed of the hosted fleet.
    pub fleet_seed: u64,
    /// Artificial per-job delay, milliseconds — a test/debug knob that
    /// makes queue saturation and drain timing deterministic.
    pub debug_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 4,
            queue_depth: 64,
            max_mv: sweep_max_mv(),
            journal: None,
            deadline_ms: 2000,
            keep_alive_secs: 5,
            fleet_chips: 64,
            fleet_seed: 7,
            debug_delay_ms: 0,
        }
    }
}

/// The top of the characterized aging sweep (50 mV in the paper):
/// plans past it would extrapolate outside the cell libraries.
#[must_use]
pub fn sweep_max_mv() -> f64 {
    AGING_SWEEP_MV.iter().copied().fold(0.0f64, f64::max)
}

impl ServeConfig {
    /// Every way this configuration is invalid, as human-readable
    /// messages. Empty means valid. Shared verbatim by
    /// [`ServeConfig::validate`] and lint SV001.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.workers == 0 {
            out.push("worker count must be at least 1".to_string());
        }
        if self.queue_depth < self.workers {
            out.push(format!(
                "queue depth {} is below the worker count {} (workers would idle)",
                self.queue_depth, self.workers
            ));
        }
        if self.addr.parse::<SocketAddr>().is_err() {
            out.push(format!(
                "listen address {:?} does not parse as host:port",
                self.addr
            ));
        }
        let sweep_top = sweep_max_mv();
        if !(self.max_mv > 0.0 && self.max_mv.is_finite() && self.max_mv <= sweep_top + 1e-9) {
            out.push(format!(
                "max ΔVth {} mV is outside the characterized 0–{sweep_top} mV library sweep",
                self.max_mv
            ));
        }
        if self.deadline_ms == 0 {
            out.push("request deadline must be at least 1 ms".to_string());
        }
        if self.fleet_chips == 0 {
            out.push("hosted fleet needs at least one chip".to_string());
        }
        out
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] naming every violation.
    pub fn validate(&self) -> Result<(), ServeError> {
        let violations = self.violations();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ServeError::Config(violations.join("; ")))
        }
    }

    /// Serializes the config as pretty-printed JSON — the saved
    /// server-config artifact format.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (the config is plain data, so it
    /// cannot).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ServeConfig serializes")
    }

    /// Parses a saved server-config artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when the text is not a valid
    /// config (shape errors only; semantic checks are
    /// [`ServeConfig::violations`]).
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        serde_json::from_str(text).map_err(|e| ServeError::Config(format!("config: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let config = ServeConfig::default();
        assert!(config.violations().is_empty(), "{:?}", config.violations());
        config.validate().expect("valid");
    }

    #[test]
    fn violations_name_every_bad_knob() {
        let config = ServeConfig {
            addr: "not-an-addr".to_string(),
            workers: 0,
            queue_depth: 0,
            max_mv: 75.0,
            deadline_ms: 0,
            fleet_chips: 0,
            ..ServeConfig::default()
        };
        let violations = config.violations();
        assert!(violations.iter().any(|v| v.contains("worker count")));
        assert!(violations.iter().any(|v| v.contains("address")));
        assert!(violations.iter().any(|v| v.contains("sweep")));
        assert!(violations.iter().any(|v| v.contains("deadline")));
        assert!(violations.iter().any(|v| v.contains("chip")));
        assert!(config.validate().is_err());
        // queue_depth 0 < workers 0 is NOT flagged (0 >= 0): the
        // worker-count violation already covers it.
        let config = ServeConfig {
            workers: 4,
            queue_depth: 2,
            ..ServeConfig::default()
        };
        assert!(config
            .violations()
            .iter()
            .any(|v| v.contains("queue depth")));
    }

    #[test]
    fn config_round_trips_through_json() {
        let mut config = ServeConfig::default();
        config.journal = Some("results/serve/journal.jsonl".to_string());
        let back = ServeConfig::from_json(&config.to_json()).expect("parses");
        assert_eq!(back, config);
    }

    #[test]
    fn sweep_top_matches_the_paper() {
        assert_eq!(sweep_max_mv(), 50.0);
    }
}
