//! A minimal HTTP/1.1 wire layer for non-blocking sockets.
//!
//! Covers exactly what the decision server needs: *incremental*
//! request parsing over a caller-owned byte buffer (the event loop
//! appends whatever `read` returned and asks "complete yet?"),
//! bounded header/body sizes, `Expect: 100-continue` detection, and
//! response rendering to a byte vector. Nothing here blocks, sleeps,
//! or owns a socket — connection lifecycle (idle sweeping, deadlines,
//! shutdown) lives in the event loop, where it can be enforced
//! centrally for every connection at once.

/// Hard cap on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Why the wire layer gave up on a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (reset, broken pipe, ...).
    Io(String),
    /// The bytes were not valid HTTP/1.1.
    Malformed(String),
    /// Head or body exceeded the configured cap.
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(msg) => write!(f, "i/o: {msg}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(n) => write!(f, "request exceeds {n} bytes"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `POST`.
    pub method: String,
    /// The origin-form target, e.g. `/v1/plan`.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close after this response.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one incremental parse attempt over a receive buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request starts the buffer; `consumed` bytes belong
    /// to it (drain them before parsing the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Head plus body length, in bytes.
        consumed: usize,
    },
    /// The buffer holds only part of a request; read more.
    Partial {
        /// The head is complete and carried `Expect: 100-continue`,
        /// but the body has not fully arrived: the client is waiting
        /// for the interim `100 Continue` before it sends the rest.
        needs_continue: bool,
    },
}

/// The byte offset one past this line's `\n`, if the line is complete.
fn line_end(buf: &[u8], start: usize) -> Option<usize> {
    buf[start..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| start + i + 1)
}

/// One head line as text, `\r\n` stripped.
fn line_text(buf: &[u8], start: usize, end: usize) -> Result<&str, HttpError> {
    std::str::from_utf8(&buf[start..end])
        .map(|s| s.trim_end_matches(['\r', '\n']))
        .map_err(|_| HttpError::Malformed("header is not UTF-8".into()))
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Returns [`Parsed::Partial`] when more bytes are needed — append
/// the next read and call again. The head cap is enforced even on
/// partial input, so a client streaming an unbounded header section
/// is rejected long before it exhausts memory.
///
/// # Errors
///
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] mean the caller
/// should answer 400/413 and close the connection.
pub fn try_parse(buf: &[u8]) -> Result<Parsed, HttpError> {
    // Request line.
    let Some(request_line_end) = line_end(buf, 0) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(MAX_HEAD_BYTES));
        }
        return Ok(Parsed::Partial {
            needs_continue: false,
        });
    };
    let request_line = std::str::from_utf8(&buf[..request_line_end])
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {:?}",
            request_line.trim_end()
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }

    // Headers, up to the empty line.
    let mut headers = Vec::new();
    let mut cursor = request_line_end;
    let head_end = loop {
        let Some(end) = line_end(buf, cursor) else {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge(MAX_HEAD_BYTES));
            }
            return Ok(Parsed::Partial {
                needs_continue: false,
            });
        };
        if end > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(MAX_HEAD_BYTES));
        }
        let text = line_text(buf, cursor, end)?;
        cursor = end;
        if text.is_empty() {
            break cursor;
        }
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header {text:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    };

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(MAX_BODY_BYTES));
    }

    let total = head_end + content_length;
    if buf.len() < total {
        // RFC 7231 §5.1.1: the client may be waiting for permission
        // before sending the body; the event loop grants it once.
        let needs_continue = headers
            .iter()
            .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"));
        return Ok(Parsed::Partial { needs_continue });
    }

    Ok(Parsed::Complete {
        request: Request {
            method: method.to_ascii_uppercase(),
            target: target.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
        },
        consumed: total,
    })
}

/// What an EOF with these unconsumed bytes means: `None` for a clean
/// close (empty buffer, or the peer gave up before finishing its
/// request line), or the malformation to answer 400 for before
/// closing — the same distinction the blocking wire layer drew.
#[must_use]
pub fn eof_error(buf: &[u8]) -> Option<HttpError> {
    if buf.is_empty() || line_end(buf, 0).is_none() {
        return None;
    }
    match try_parse(buf) {
        Ok(Parsed::Complete { .. }) => None,
        Ok(Parsed::Partial { .. }) => {
            // Past the request line: did the head complete?
            let mut cursor = line_end(buf, 0).expect("checked above");
            let mut head_done = false;
            while let Some(end) = line_end(buf, cursor) {
                if buf[cursor..end].iter().all(|&b| b == b'\r' || b == b'\n') {
                    head_done = true;
                    break;
                }
                cursor = end;
            }
            Some(HttpError::Malformed(if head_done {
                "body truncated by EOF".into()
            } else {
                "headers truncated".into()
            }))
        }
        Err(err) => Some(err),
    }
}

/// The interim response granting `Expect: 100-continue`.
pub const CONTINUE_BYTES: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// A response ready to render.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Renders the response head into `out`, with the right
    /// `Connection` header, leaving the body to the caller — the fast
    /// path appends a prerendered body slice with no intermediate
    /// `Response` at all.
    pub fn render_head(
        out: &mut Vec<u8>,
        status: u16,
        content_type: &str,
        body_len: usize,
        keep_alive: bool,
        extra_headers: &[(&'static str, String)],
    ) {
        use std::io::Write;
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            status,
            reason(status),
            content_type,
            body_len,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in extra_headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
    }

    /// Appends the full wire form (head + body) to `out`.
    pub fn render_to(&self, out: &mut Vec<u8>, keep_alive: bool) {
        Self::render_head(
            out,
            self.status,
            self.content_type,
            self.body.len(),
            keep_alive,
            &self.extra_headers,
        );
        out.extend_from_slice(self.body.as_bytes());
    }

    /// The full wire form as a fresh byte vector.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.render_to(&mut out, keep_alive);
        out
    }
}

/// The reason phrase of a status code this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (Request, usize) {
        match try_parse(raw).expect("parses") {
            Parsed::Complete { request, consumed } => (request, consumed),
            Parsed::Partial { .. } => panic!("expected a complete request"),
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/plan HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\nbody";
        let (req, consumed) = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/plan");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn partial_input_asks_for_more_at_every_boundary() {
        let raw = b"POST /v1/plan HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            assert!(
                matches!(try_parse(&raw[..cut]), Ok(Parsed::Partial { .. })),
                "cut at {cut} should be partial"
            );
        }
        let (req, _) = complete(raw);
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn pipelined_requests_are_consumed_one_at_a_time() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = complete(raw);
        assert_eq!(first.target, "/healthz");
        let (second, rest) = complete(&raw[consumed..]);
        assert_eq!(second.target, "/metrics");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn expect_continue_is_flagged_only_while_the_body_is_pending() {
        let head = b"POST /v1/plan HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 4\r\n\r\n";
        match try_parse(head).expect("parses") {
            Parsed::Partial { needs_continue } => assert!(needs_continue),
            Parsed::Complete { .. } => panic!("body missing"),
        }
        let mut full = head.to_vec();
        full.extend_from_slice(b"body");
        let (req, _) = complete(&full);
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        assert!(matches!(
            try_parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            try_parse(raw.as_bytes()),
            Err(HttpError::TooLarge(MAX_BODY_BYTES))
        ));
        // An unbounded header section is cut off at the head cap even
        // though no empty line ever arrives.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES + 1));
        assert!(matches!(
            try_parse(&raw),
            Err(HttpError::TooLarge(MAX_HEAD_BYTES))
        ));
    }

    #[test]
    fn eof_classification_matches_parse_progress() {
        assert!(eof_error(b"").is_none(), "clean close");
        assert!(
            eof_error(b"GET / HT").is_none(),
            "gave up mid-request-line: silent close"
        );
        assert!(
            matches!(
                eof_error(b"GET / HTTP/1.1\r\nhost: x\r\n"),
                Some(HttpError::Malformed(m)) if m == "headers truncated"
            ),
            "EOF mid-headers is malformed"
        );
        assert!(
            matches!(
                eof_error(b"POST / HTTP/1.1\r\ncontent-length: 4\r\n\r\nbo"),
                Some(HttpError::Malformed(m)) if m == "body truncated by EOF"
            ),
            "EOF mid-body is malformed"
        );
        assert!(
            eof_error(b"GET /healthz HTTP/1.1\r\n\r\n").is_none(),
            "a complete unconsumed request is not an EOF error"
        );
    }

    #[test]
    fn rendered_bytes_pin_the_wire_format() {
        let response =
            Response::json(200, "{\"ok\":true}".to_string()).with_header("retry-after", "1".into());
        let bytes = response.to_bytes(true);
        assert_eq!(
            String::from_utf8(bytes).expect("utf-8"),
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 11\r\nconnection: keep-alive\r\nretry-after: 1\r\n\r\n{\"ok\":true}"
        );
        let close = Response::text(404, "gone".to_string()).to_bytes(false);
        assert_eq!(
            String::from_utf8(close).expect("utf-8"),
            "HTTP/1.1 404 Not Found\r\ncontent-type: text/plain; charset=utf-8\r\ncontent-length: 4\r\nconnection: close\r\n\r\ngone"
        );
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown");
        }
    }
}
