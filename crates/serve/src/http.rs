//! A minimal HTTP/1.1 wire layer over blocking `std::net` sockets.
//!
//! Covers exactly what the decision server needs: request parsing
//! with bounded header/body sizes, `Expect: 100-continue`, keep-alive
//! with an idle limit, and response writing. Reads run with a short
//! socket timeout ("tick") so an idle or shutting-down connection is
//! noticed promptly; partial reads survive ticks because every read
//! loop accumulates into its own buffer.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Why the wire layer gave up on a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (reset, broken pipe, ...).
    Io(String),
    /// The bytes were not valid HTTP/1.1.
    Malformed(String),
    /// Head or body exceeded the configured cap.
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(msg) => write!(f, "i/o: {msg}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(n) => write!(f, "request exceeds {n} bytes"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `POST`.
    pub method: String,
    /// The origin-form target, e.g. `/v1/plan`.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close after this response.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed, the idle limit passed, or `should_abort` said
    /// to stop — either way the connection is done.
    Closed,
}

/// Reads one line (through `\n`) into `buf`, surviving read-timeout
/// ticks. Returns false on clean EOF before any byte of this line.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    should_abort: &dyn Fn() -> bool,
    idle_limit: Duration,
) -> Result<bool, HttpError> {
    let start = Instant::now();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(0) => return Ok(false),
            Ok(_) if buf.last() == Some(&b'\n') => return Ok(true),
            // EOF mid-line: read_until stopped without the delimiter.
            Ok(_) => return Ok(false),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A tick. Between requests (nothing read yet) this is
                // ordinary keep-alive idling up to the limit; if we
                // are mid-line the client is slow but alive, so only
                // shutdown aborts it.
                if should_abort() {
                    return Ok(false);
                }
                if buf.is_empty() && start.elapsed() >= idle_limit {
                    return Ok(false);
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(MAX_HEAD_BYTES));
        }
    }
}

/// Reads the body, surviving ticks; aborts only on socket errors.
fn read_exact_ticking(
    reader: &mut BufReader<TcpStream>,
    body: &mut [u8],
    should_abort: &dyn Fn() -> bool,
) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < body.len() {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("body truncated by EOF".into())),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_abort() {
                    return Err(HttpError::Io("shutdown mid-body".into()));
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads the next request off a keep-alive connection.
///
/// The stream's read timeout is the caller's tick (set once per
/// connection); `idle_limit` bounds how long we wait between requests
/// and `should_abort` is polled every tick so a draining server stops
/// waiting promptly.
///
/// # Errors
///
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] mean the caller
/// should answer 400/413 and close; [`HttpError::Io`] means just
/// close.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    should_abort: &dyn Fn() -> bool,
    idle_limit: Duration,
) -> Result<NextRequest, HttpError> {
    let mut line = Vec::new();
    if !read_line(reader, &mut line, should_abort, idle_limit)? {
        return Ok(NextRequest::Closed);
    }
    let request_line = String::from_utf8(line)
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line {:?}",
            request_line.trim_end()
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut line = Vec::new();
        if !read_line(reader, &mut line, should_abort, idle_limit)? {
            return Err(HttpError::Malformed("headers truncated".into()));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(MAX_HEAD_BYTES));
        }
        let text = String::from_utf8(line)
            .map_err(|_| HttpError::Malformed("header is not UTF-8".into()))?;
        let text = text.trim_end_matches(['\r', '\n']);
        if text.is_empty() {
            break;
        }
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header {text:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(MAX_BODY_BYTES));
    }

    // RFC 7231 §5.1.1: a client may wait for permission before
    // sending a large body; grant it before reading.
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        reader
            .get_mut()
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }

    let mut body = vec![0u8; content_length];
    read_exact_ticking(reader, &mut body, should_abort)?;

    Ok(NextRequest::Request(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// A response ready to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body text.
    pub body: String,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Writes the response, with the right `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase of a status code this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agequant_check::thread;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<NextRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(&raw).expect("write");
            // Keep the stream open briefly so reads see the bytes,
            // then drop it for a clean EOF.
        });
        let (stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);
        let result = read_request(&mut reader, &|| false, Duration::from_millis(400));
        writer.join().expect("writer");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/plan HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\nbody";
        match roundtrip(raw).expect("parses") {
            NextRequest::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/v1/plan");
                assert_eq!(req.body, b"body");
                assert_eq!(req.header("host"), Some("x"));
                assert!(!req.wants_close());
            }
            NextRequest::Closed => panic!("expected a request"),
        }
    }

    #[test]
    fn idle_connection_closes_cleanly() {
        // No bytes at all: the idle limit expires into Closed.
        match roundtrip(b"").expect("clean close") {
            NextRequest::Closed => {}
            NextRequest::Request(req) => panic!("unexpected {req:?}"),
        }
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown");
        }
    }
}
