//! The bounded work queue behind the server's decision endpoints.
//!
//! `try_push` refuses instead of blocking — that refusal is what turns
//! overload into `503` rather than latency collapse or unbounded
//! memory. [`BoundedQueue::close`] starts the graceful drain:
//! producers are refused from that point, and [`BoundedQueue::pop`]
//! keeps handing out queued items until the backlog is empty, then
//! returns `None` to every consumer.
//!
//! The queue is built on the `agequant-check` facade, so the whole
//! push/pop/close protocol is model-checked under
//! `cargo test -p agequant-check --features model` (no item lost or
//! double-delivered, capacity respected, drain completes, no lost
//! wakeup on close).

use std::collections::VecDeque;
use std::time::Duration;

use agequant_check::sync::{Condvar, Mutex};

/// How long a blocked consumer waits before re-checking the backlog
/// and the closed flag (bounds drain latency if a wakeup is missed).
const POP_TICK: Duration = Duration::from_millis(200);

/// Everything the mutex protects: the backlog and the drain flag share
/// one lock so a close can never slip between a consumer's emptiness
/// check and its wait.
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with a graceful
/// close.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues, or hands the item back when the queue is full or
    /// closed.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity or draining.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("unpoisoned queue");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained — the graceful-drain contract every consumer relies on.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[cfg(not(agequant_model_mutation))]
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("unpoisoned queue");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait_timeout(inner, POP_TICK)
                .expect("unpoisoned queue")
                .0;
        }
    }

    /// Seeded bug for the checker's mutation self-test: the `while`
    /// loop above degraded to a single `if` — a timed-out (spurious)
    /// wakeup on an empty open queue makes the consumer give up as if
    /// the queue were drained, abandoning later accepted work.
    #[cfg(agequant_model_mutation)]
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("unpoisoned queue");
        if let Some(item) = inner.items.pop_front() {
            return Some(item);
        }
        if inner.closed {
            return None;
        }
        inner = self
            .available
            .wait_timeout(inner, POP_TICK)
            .expect("unpoisoned queue")
            .0;
        inner.items.pop_front()
    }

    /// Starts the drain: refuses new items, wakes every blocked
    /// consumer so each can hand out the backlog and then observe the
    /// close.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    pub fn close(&self) {
        self.inner.lock().expect("unpoisoned queue").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("unpoisoned queue").items.len()
    }

    /// Whether the backlog is empty.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
