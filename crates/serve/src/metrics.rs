//! Prometheus text-format metrics for the decision server.
//!
//! Everything is a plain atomic counter (histograms are cumulative
//! per-bucket counters, as the exposition format requires), so the
//! `/metrics` scrape never takes a lock and never blocks the plan
//! path — the same discipline the engine's `CacheStats` follow.

use std::collections::BTreeMap;
use std::time::Duration;

use agequant_check::sync::atomic::{AtomicU64, Ordering};

use agequant_core::CacheStats;
use agequant_fleet::{AutopilotSummary, MemorySummary};

/// Latency histogram upper bounds, seconds. The last implicit bucket
/// is `+Inf`.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 2.0,
];

/// The endpoints the server distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/plan`
    Plan,
    /// `POST /v1/plan/batch`
    PlanBatch,
    /// `POST /v1/telemetry`
    Telemetry,
    /// `GET /v1/fleet/summary`
    Summary,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/shutdown`
    Shutdown,
    /// `GET /v1/memory/summary`
    MemorySummary,
    /// Anything else (404s, bad requests, ...).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 8] = [
        Endpoint::Plan,
        Endpoint::PlanBatch,
        Endpoint::Telemetry,
        Endpoint::Summary,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::MemorySummary,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Plan => 0,
            Endpoint::PlanBatch => 1,
            Endpoint::Telemetry => 2,
            Endpoint::Summary => 3,
            Endpoint::Metrics => 4,
            Endpoint::Shutdown => 5,
            Endpoint::MemorySummary => 6,
            Endpoint::Other => 7,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Endpoint::Plan => "plan",
            Endpoint::PlanBatch => "plan_batch",
            Endpoint::Telemetry => "telemetry",
            Endpoint::Summary => "fleet_summary",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::MemorySummary => "memory_summary",
            Endpoint::Other => "other",
        }
    }
}

/// Per-endpoint counters: requests by status class plus a latency
/// histogram.
#[derive(Debug)]
struct EndpointStats {
    /// Status classes 1xx..5xx at indices 0..4.
    by_class: [AtomicU64; 5],
    /// Cumulative histogram counters, one per bound plus `+Inf`.
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len() + 1],
    /// Total observed latency, nanoseconds.
    sum_nanos: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

impl EndpointStats {
    fn new() -> Self {
        EndpointStats {
            by_class: std::array::from_fn(|_| AtomicU64::new(0)),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The server's metric registry.
#[derive(Debug)]
pub struct Metrics {
    endpoints: [EndpointStats; 8],
    /// Requests answered `503` because the queue was full.
    queue_rejected: AtomicU64,
    /// Requests answered `504` past their deadline.
    timeouts: AtomicU64,
    /// EWMA of the absolute measured-vs-model telemetry residual,
    /// millivolts, stored as `f64::to_bits`. Updated by
    /// `POST /v1/telemetry` whenever a client reports a measured
    /// ΔVth; previously that disagreement was computed and thrown
    /// away after the consistency bool.
    telemetry_residual_bits: AtomicU64,
    /// Live connections registered with the event loops.
    open_connections: AtomicU64,
    /// Plan decisions answered from the materialized table.
    table_hits: AtomicU64,
    /// Plan decisions that fell through to the live decider path.
    table_misses: AtomicU64,
}

/// Smoothing factor for the exported telemetry-residual EWMA.
const RESIDUAL_ALPHA: f64 = 0.25;

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            endpoints: std::array::from_fn(|_| EndpointStats::new()),
            queue_rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            telemetry_residual_bits: AtomicU64::new(0.0f64.to_bits()),
            open_connections: AtomicU64::new(0),
            table_hits: AtomicU64::new(0),
            table_misses: AtomicU64::new(0),
        }
    }

    /// Registers a newly accepted connection.
    pub fn connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Deregisters a closed connection.
    pub fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Live connections right now.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Records `n` plan decisions served straight from the
    /// materialized decision table.
    pub fn record_table_hits(&self, n: u64) {
        self.table_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` plan decisions that fell through to the live
    /// decider path (queued for a worker).
    pub fn record_table_misses(&self, n: u64) {
        self.table_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Table hits so far.
    #[must_use]
    pub fn table_hits(&self) -> u64 {
        self.table_hits.load(Ordering::Relaxed)
    }

    /// Table misses so far.
    #[must_use]
    pub fn table_misses(&self) -> u64 {
        self.table_misses.load(Ordering::Relaxed)
    }

    /// Records one finished request.
    pub fn observe(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let stats = &self.endpoints[endpoint.index()];
        let class = usize::from(status / 100).clamp(1, 5) - 1;
        stats.by_class[class].fetch_add(1, Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        let mut slot = LATENCY_BUCKETS_S.len();
        for (i, bound) in LATENCY_BUCKETS_S.iter().enumerate() {
            if secs <= *bound {
                slot = i;
                break;
            }
        }
        // Cumulative: an observation increments its bucket and every
        // wider one, so `le` counters are monotone as Prometheus
        // expects.
        for bucket in &stats.buckets[slot..] {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        stats.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        stats.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a backpressure rejection (queue full, `503`).
    pub fn record_rejection(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline expiry (`504`).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one measured-vs-model telemetry residual (millivolts,
    /// sign discarded) into the exported EWMA. Non-finite values are
    /// dropped. A compare-exchange loop keeps concurrent updates from
    /// losing each other without taking a lock on the scrape path.
    pub fn record_residual(&self, residual_mv: f64) {
        if !residual_mv.is_finite() {
            return;
        }
        let sample = residual_mv.abs();
        let mut current = self.telemetry_residual_bits.load(Ordering::Relaxed);
        loop {
            let ewma = RESIDUAL_ALPHA * sample + (1.0 - RESIDUAL_ALPHA) * f64::from_bits(current);
            match self.telemetry_residual_bits.compare_exchange_weak(
                current,
                ewma.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current telemetry-residual EWMA, millivolts.
    #[must_use]
    pub fn telemetry_residual_mv(&self) -> f64 {
        f64::from_bits(self.telemetry_residual_bits.load(Ordering::Relaxed))
    }

    /// Total rejections so far.
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.queue_rejected.load(Ordering::Relaxed)
    }

    /// Renders the registry in Prometheus text exposition format,
    /// folding in the live queue depth, the engine's cache counters —
    /// the aggregate series plus one labelled series per degradation
    /// model — and, when the hosted fleet tracks them, the
    /// weight-memory and autopilot rollups.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn render(
        &self,
        queue_depth: usize,
        engine: &CacheStats,
        by_model: &BTreeMap<String, CacheStats>,
        memory: Option<&MemorySummary>,
        autopilot: Option<&AutopilotSummary>,
    ) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP agequant_http_requests_total Requests by endpoint and status class\n");
        out.push_str("# TYPE agequant_http_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            let stats = &self.endpoints[endpoint.index()];
            for (class, counter) in stats.by_class.iter().enumerate() {
                let n = counter.load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "agequant_http_requests_total{{endpoint=\"{}\",code=\"{}xx\"}} {n}\n",
                        endpoint.label(),
                        class + 1
                    ));
                }
            }
        }

        out.push_str("# HELP agequant_http_request_duration_seconds Request latency by endpoint\n");
        out.push_str("# TYPE agequant_http_request_duration_seconds histogram\n");
        for endpoint in Endpoint::ALL {
            let stats = &self.endpoints[endpoint.index()];
            if stats.count.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let label = endpoint.label();
            for (i, bound) in LATENCY_BUCKETS_S.iter().enumerate() {
                out.push_str(&format!(
                    "agequant_http_request_duration_seconds_bucket{{endpoint=\"{label}\",le=\"{bound}\"}} {}\n",
                    stats.buckets[i].load(Ordering::Relaxed)
                ));
            }
            out.push_str(&format!(
                "agequant_http_request_duration_seconds_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {}\n",
                stats.buckets[LATENCY_BUCKETS_S.len()].load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "agequant_http_request_duration_seconds_sum{{endpoint=\"{label}\"}} {}\n",
                stats.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
            ));
            out.push_str(&format!(
                "agequant_http_request_duration_seconds_count{{endpoint=\"{label}\"}} {}\n",
                stats.count.load(Ordering::Relaxed)
            ));
        }

        out.push_str("# HELP agequant_queue_depth Jobs waiting in the bounded queue\n");
        out.push_str("# TYPE agequant_queue_depth gauge\n");
        out.push_str(&format!("agequant_queue_depth {queue_depth}\n"));
        out.push_str(
            "# HELP agequant_queue_rejected_total Requests answered 503 on a full queue\n",
        );
        out.push_str("# TYPE agequant_queue_rejected_total counter\n");
        out.push_str(&format!(
            "agequant_queue_rejected_total {}\n",
            self.queue_rejected.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP agequant_serve_open_connections Live connections registered with the event loops\n",
        );
        out.push_str("# TYPE agequant_serve_open_connections gauge\n");
        out.push_str(&format!(
            "agequant_serve_open_connections {}\n",
            self.open_connections.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP agequant_serve_table_hits_total Plan decisions served from the materialized decision table\n",
        );
        out.push_str("# TYPE agequant_serve_table_hits_total counter\n");
        out.push_str(&format!(
            "agequant_serve_table_hits_total {}\n",
            self.table_hits.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP agequant_serve_table_misses_total Plan decisions that fell through to the live decider\n",
        );
        out.push_str("# TYPE agequant_serve_table_misses_total counter\n");
        out.push_str(&format!(
            "agequant_serve_table_misses_total {}\n",
            self.table_misses.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP agequant_request_timeouts_total Requests past their deadline\n");
        out.push_str("# TYPE agequant_request_timeouts_total counter\n");
        out.push_str(&format!(
            "agequant_request_timeouts_total {}\n",
            self.timeouts.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP agequant_telemetry_residual_mv EWMA of the absolute measured-vs-model telemetry residual\n",
        );
        out.push_str("# TYPE agequant_telemetry_residual_mv gauge\n");
        out.push_str(&format!(
            "agequant_telemetry_residual_mv {}\n",
            self.telemetry_residual_mv()
        ));

        if let Some(autopilot) = autopilot {
            out.push_str(
                "# HELP agequant_autopilot_regime_chips Enrolled chips by control regime\n",
            );
            out.push_str("# TYPE agequant_autopilot_regime_chips gauge\n");
            for (regime, n) in [
                ("calm", autopilot.calm),
                ("watch", autopilot.watch),
                ("intervene", autopilot.intervene),
            ] {
                out.push_str(&format!(
                    "agequant_autopilot_regime_chips{{regime=\"{regime}\"}} {n}\n"
                ));
            }
            out.push_str(
                "# HELP agequant_autopilot_budget_tokens Telemetry-budget tokens in the bucket\n",
            );
            out.push_str("# TYPE agequant_autopilot_budget_tokens gauge\n");
            out.push_str(&format!(
                "agequant_autopilot_budget_tokens {}\n",
                autopilot.budget_tokens
            ));
            out.push_str("# HELP agequant_autopilot_messages_total Telemetry grants by outcome\n");
            out.push_str("# TYPE agequant_autopilot_messages_total counter\n");
            for (outcome, n) in [
                ("granted", autopilot.messages_granted),
                ("deferred", autopilot.messages_deferred),
                ("overdraft", autopilot.overdraft_grants),
            ] {
                out.push_str(&format!(
                    "agequant_autopilot_messages_total{{outcome=\"{outcome}\"}} {n}\n"
                ));
            }
        }

        if let Some(memory) = memory {
            out.push_str(
                "# HELP agequant_memory_reencodes_total Weight-memory re-encodes across the hosted fleet\n",
            );
            out.push_str("# TYPE agequant_memory_reencodes_total counter\n");
            out.push_str(&format!(
                "agequant_memory_reencodes_total {}\n",
                memory.reencodes
            ));
            out.push_str(
                "# HELP agequant_memory_degraded_chips Chips whose weight memory crossed the degrade threshold\n",
            );
            out.push_str("# TYPE agequant_memory_degraded_chips gauge\n");
            out.push_str(&format!(
                "agequant_memory_degraded_chips {}\n",
                memory.memory_degraded
            ));
            out.push_str(
                "# HELP agequant_memory_worst_failure_prob Worst per-chip worst-bit failure probability\n",
            );
            out.push_str("# TYPE agequant_memory_worst_failure_prob gauge\n");
            out.push_str(&format!(
                "agequant_memory_worst_failure_prob {}\n",
                memory.worst_failure_prob
            ));
        }
        out.push_str(
            "# HELP agequant_engine_cache_events_total Evaluation-engine cache counters\n",
        );
        out.push_str("# TYPE agequant_engine_cache_events_total counter\n");
        for (cache, event, n) in [
            ("library", "hit", engine.library_hits),
            ("library", "miss", engine.library_misses),
            ("plan", "hit", engine.plan_hits),
            ("plan", "miss", engine.plan_misses),
        ] {
            out.push_str(&format!(
                "agequant_engine_cache_events_total{{cache=\"{cache}\",event=\"{event}\"}} {n}\n"
            ));
        }
        if !by_model.is_empty() {
            out.push_str(
                "# HELP agequant_engine_model_cache_events_total Evaluation-engine cache counters by degradation model\n",
            );
            out.push_str("# TYPE agequant_engine_model_cache_events_total counter\n");
            for (model, stats) in by_model {
                for (cache, event, n) in [
                    ("library", "hit", stats.library_hits),
                    ("library", "miss", stats.library_misses),
                    ("plan", "hit", stats.plan_hits),
                    ("plan", "miss", stats.plan_misses),
                ] {
                    out.push_str(&format!(
                        "agequant_engine_model_cache_events_total{{model=\"{model}\",cache=\"{cache}\",event=\"{event}\"}} {n}\n"
                    ));
                }
            }
        }
        out.push_str("# HELP agequant_engine_plan_hit_rate Plan-cache hit rate\n");
        out.push_str("# TYPE agequant_engine_plan_hit_rate gauge\n");
        out.push_str(&format!(
            "agequant_engine_plan_hit_rate {}\n",
            engine.plan_hit_rate()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let metrics = Metrics::new();
        metrics.observe(Endpoint::Plan, 200, Duration::from_micros(80));
        metrics.observe(Endpoint::Plan, 200, Duration::from_millis(3));
        metrics.observe(Endpoint::Plan, 503, Duration::from_micros(10));
        let text = metrics.render(2, &CacheStats::default(), &BTreeMap::new(), None, None);
        // 80 µs and 10 µs fall at or under 100 µs; 3 ms lands later.
        assert!(text.contains("le=\"0.0001\"} 2\n"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("endpoint=\"plan\",code=\"2xx\"} 2"));
        assert!(text.contains("endpoint=\"plan\",code=\"5xx\"} 1"));
        assert!(text.contains("agequant_queue_depth 2"));
    }

    #[test]
    fn rejections_and_timeouts_are_counted() {
        let metrics = Metrics::new();
        metrics.record_rejection();
        metrics.record_rejection();
        metrics.record_timeout();
        assert_eq!(metrics.rejections(), 2);
        let text = metrics.render(0, &CacheStats::default(), &BTreeMap::new(), None, None);
        assert!(text.contains("agequant_queue_rejected_total 2"));
        assert!(text.contains("agequant_request_timeouts_total 1"));
    }

    #[test]
    fn connection_gauge_and_table_counters_are_exported() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.connection_closed();
        metrics.record_table_hits(5);
        metrics.record_table_misses(2);
        assert_eq!(metrics.open_connections(), 1);
        assert_eq!(metrics.table_hits(), 5);
        assert_eq!(metrics.table_misses(), 2);
        let text = metrics.render(0, &CacheStats::default(), &BTreeMap::new(), None, None);
        assert!(text.contains("agequant_serve_open_connections 1"));
        assert!(text.contains("agequant_serve_table_hits_total 5"));
        assert!(text.contains("agequant_serve_table_misses_total 2"));
    }

    #[test]
    fn engine_counters_are_exported() {
        let metrics = Metrics::new();
        let stats = CacheStats {
            library_hits: 7,
            library_misses: 1,
            plan_hits: 30,
            plan_misses: 2,
        };
        let text = metrics.render(0, &stats, &BTreeMap::new(), None, None);
        assert!(text.contains("cache=\"plan\",event=\"hit\"} 30"));
        assert!(text.contains("cache=\"library\",event=\"miss\"} 1"));
        assert!(text.contains("agequant_engine_plan_hit_rate 0.9375"));
        // No per-model series without per-model counters.
        assert!(!text.contains("agequant_engine_model_cache_events_total"));
    }

    #[test]
    fn per_model_counters_are_exported_as_labelled_series() {
        let metrics = Metrics::new();
        let mut by_model = BTreeMap::new();
        by_model.insert(
            "nbti".to_string(),
            CacheStats {
                library_hits: 5,
                library_misses: 6,
                plan_hits: 7,
                plan_misses: 8,
            },
        );
        by_model.insert(
            "hci".to_string(),
            CacheStats {
                library_hits: 1,
                library_misses: 2,
                plan_hits: 3,
                plan_misses: 4,
            },
        );
        let text = metrics.render(0, &CacheStats::default(), &by_model, None, None);
        assert!(text.contains(
            "agequant_engine_model_cache_events_total{model=\"nbti\",cache=\"plan\",event=\"miss\"} 8"
        ));
        assert!(text.contains(
            "agequant_engine_model_cache_events_total{model=\"hci\",cache=\"library\",event=\"hit\"} 1"
        ));
        // The aggregate series is untouched by the split.
        assert!(text.contains("agequant_engine_cache_events_total{cache=\"plan\",event=\"hit\"} 0"));
    }
}
