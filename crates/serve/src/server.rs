//! The concurrent decision server: bounded-queue worker pool with
//! explicit backpressure over the shared [`Decider`].
//!
//! ## Architecture
//!
//! One acceptor thread hands each connection to its own I/O thread
//! (blocking reads with a short timeout tick, keep-alive loop). Read
//! endpoints (`/metrics`, `/v1/fleet/summary`) are answered inline —
//! they only read atomics or take a short lock. Decision endpoints
//! (`/v1/plan`, `/v1/telemetry`) are enqueued on a bounded queue
//! served by `workers` threads; a full queue answers `503` with
//! `Retry-After` *immediately* — the queue bound is the server's only
//! buffer, so memory stays flat under overload. Each job carries a
//! deadline: the connection gives up with `504` when it passes, and a
//! worker popping an already-expired job drops it instead of burning
//! engine time on an abandoned reply.
//!
//! ## Shutdown
//!
//! `POST /v1/shutdown` (or [`ServerHandle::shutdown`]) flips one
//! flag. The acceptor wakes (self-connect) and stops accepting;
//! workers drain every job already queued, then exit; connection
//! threads finish writing in-flight responses, answer
//! `connection: close`, and wind down. [`ServerHandle::join`] returns
//! when the drain is complete.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use agequant_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use agequant_check::sync::{mpsc, Arc, Mutex, RwLock};
use agequant_check::thread::{self, JoinHandle};

use agequant_aging::{ModelSpec, VthShift};
use agequant_core::EvalEngine;
use agequant_fleet::{journal, AutopilotConfig, Decider, Decision, FleetConfig, FleetSim};
use serde::{Deserialize, Value};

use crate::config::ServeConfig;
use crate::http::{read_request, HttpError, NextRequest, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::queue::BoundedQueue;
use crate::ServeError;

/// How often blocking reads wake to check idle time and shutdown.
const READ_TICK: Duration = Duration::from_millis(100);
/// Telemetry may advance the hosted fleet at most this many epochs in
/// one request, bounding worst-case work per call.
const MAX_EPOCH_ADVANCE: u64 = 10_000;
/// `POST /v1/plan/batch` accepts at most this many elements, bounding
/// the engine time one queued job can consume.
const MAX_BATCH: usize = 1024;

/// `POST /v1/plan` body.
#[derive(Debug, Deserialize)]
struct PlanRequest {
    /// Measured ΔVth, millivolts.
    delta_vth_mv: f64,
    /// Optional constraint override as a fraction of the fresh
    /// critical path (the fleet's configured factor when absent).
    constraint_factor: Option<f64>,
    /// Optional degradation-model selector (a zoo name from
    /// `GET /v1/models`); the server's configured model when absent,
    /// so pre-existing clients see byte-identical responses.
    model: Option<String>,
}

/// `POST /v1/telemetry` body.
#[derive(Debug, Deserialize)]
struct TelemetryRequest {
    /// Chip id in the hosted fleet.
    chip: u32,
    /// The epoch the sample was taken at.
    epoch: u64,
    /// Optionally, the chip's measured ΔVth for cross-checking
    /// against the model (never mutates server state).
    delta_vth_mv: Option<f64>,
}

/// `POST /v1/autopilot/enroll` body: optional overrides on the demo
/// controller. An empty body enrolls with the stock configuration.
#[derive(Debug, Deserialize)]
struct EnrollRequest {
    /// Telemetry tokens added to the fleet bucket each epoch.
    budget_messages_per_epoch: Option<u64>,
    /// Bucket capacity: the largest burst one epoch may spend.
    budget_burst: Option<u64>,
}

/// A parsed decision call waiting for a worker.
enum ApiCall {
    Plan(PlanRequest),
    PlanBatch(Vec<PlanRequest>),
    Telemetry(TelemetryRequest),
}

/// One queued unit of work.
struct Job {
    call: ApiCall,
    reply: mpsc::Sender<Response>,
    deadline: Instant,
}

/// The hosted fleet plus its incremental journal cursor.
struct FleetHost {
    sim: FleetSim,
    /// Journal events already flushed to the journal file.
    flushed: usize,
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    decider: Arc<Decider>,
    /// The engine every decider (default and per-model) plans through;
    /// cache entries are model-keyed, so sharing is safe and the
    /// `/metrics` split stays exact.
    engine: Arc<EvalEngine>,
    /// Lazily built deciders for non-default zoo models requested via
    /// `POST /v1/plan`'s `model` field, keyed by zoo name.
    model_deciders: RwLock<BTreeMap<String, Arc<Decider>>>,
    fleet: Mutex<FleetHost>,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

/// A running server. Dropping the handle does NOT stop the server;
/// call [`ServerHandle::shutdown`] (or hit `POST /v1/shutdown`) and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared decision core — the reference tests compare server
    /// responses against.
    #[must_use]
    pub fn decider(&self) -> Arc<Decider> {
        Arc::clone(&self.shared.decider)
    }

    /// Requests a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete: acceptor gone, queue empty,
    /// workers exited, in-flight connections wound down. The handle
    /// stays usable afterwards (e.g. for [`write_checkpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
        // Connection threads are detached; give in-flight responses a
        // bounded window to flush before declaring the drain done.
        let patience = Instant::now();
        while self.shared.active_connections.load(Ordering::SeqCst) > 0
            && patience.elapsed() < Duration::from_secs(10)
        {
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Convenience: shutdown then join.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn shutdown_and_join(mut self) {
        self.shutdown();
        self.join();
    }
}

/// Builds and starts the server: binds the address, plans the hosted
/// fleet's epoch-0 decisions (warming the engine), seeds the journal
/// file, and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Returns [`ServeError::Config`] on an invalid configuration,
/// [`ServeError::Fleet`] if the decision core cannot be built, or
/// [`ServeError::Io`] if the address cannot be bound or the journal
/// cannot be created.
pub fn start(config: ServeConfig, fleet_config: FleetConfig) -> Result<ServerHandle, ServeError> {
    config.validate()?;
    let mut fleet_config = fleet_config;
    fleet_config.chips = config.fleet_chips;
    fleet_config.seed = config.fleet_seed;
    let engine = Arc::new(EvalEngine::new(fleet_config.flow.process.clone()));
    let decider = Arc::new(
        Decider::with_engine(&fleet_config, Arc::clone(&engine)).map_err(ServeError::Fleet)?,
    );
    let sim = FleetSim::new_with_decider(Arc::clone(&decider)).map_err(ServeError::Fleet)?;

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::Io(e.to_string()))?;

    let mut host = FleetHost { sim, flushed: 0 };
    if let Some(path) = &config.journal {
        // Each server run owns its journal file from epoch 0, so the
        // file alone satisfies the journal causality lint.
        std::fs::write(path, "").map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
        flush_journal(&config, &mut host)?;
    }

    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth as usize),
        config,
        addr,
        decider,
        engine,
        model_deciders: RwLock::new(BTreeMap::new()),
        fleet: Mutex::new(host),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
    });

    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || acceptor_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Closing refuses new work and wakes every worker to drain the
    // backlog; the queue hands out `None` once it runs dry.
    shared.queue.close();
    // Unblock the acceptor's blocking accept() with a throwaway
    // connection; it re-checks the flag before handling it.
    let _ = TcpStream::connect(shared.addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let spawned = thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                handle_connection(&shared, stream);
                shared.active_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): the stream
            // drops, the client sees a reset — still bounded.
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let idle_limit = Duration::from_secs(shared.config.keep_alive_secs.max(1));
    let abort = {
        let shared = Arc::clone(shared);
        move || shared.shutdown.load(Ordering::SeqCst)
    };
    loop {
        let request = match read_request(&mut reader, &abort, idle_limit) {
            Ok(NextRequest::Request(request)) => request,
            Ok(NextRequest::Closed) => break,
            Err(HttpError::Malformed(msg)) => {
                let response = Response::json(400, error_body(&msg));
                shared.metrics.observe(Endpoint::Other, 400, Duration::ZERO);
                let _ = response.write_to(&mut writer, false);
                break;
            }
            Err(HttpError::TooLarge(limit)) => {
                let response = Response::json(413, error_body(&format!("limit {limit} bytes")));
                shared.metrics.observe(Endpoint::Other, 413, Duration::ZERO);
                let _ = response.write_to(&mut writer, false);
                break;
            }
            Err(HttpError::Io(_)) => break,
        };
        let started = Instant::now();
        let (endpoint, response) = route(shared, &request);
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let keep_alive = !draining && !request.wants_close();
        shared
            .metrics
            .observe(endpoint, response.status, started.elapsed());
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Dispatches one request. Read endpoints answer inline; decision
/// endpoints go through the bounded queue.
fn route(shared: &Arc<Shared>, request: &Request) -> (Endpoint, Response) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/metrics") => {
            let stats = shared.engine.stats();
            let by_model = shared.engine.stats_by_model();
            // The memory and autopilot rollups need the fleet summary;
            // scrapes only pay for building it when an axis is live.
            let (memory, autopilot) = {
                let host = shared.fleet.lock().expect("unpoisoned fleet");
                let wants =
                    shared.decider.memory().is_some() || host.sim.config().autopilot.is_some();
                if wants {
                    let summary = host.sim.summary();
                    (summary.memory, summary.autopilot)
                } else {
                    (None, None)
                }
            };
            let text = shared.metrics.render(
                shared.queue.len(),
                &stats,
                &by_model,
                memory.as_ref(),
                autopilot.as_ref(),
            );
            (
                Endpoint::Metrics,
                Response::text(200, text).with_header("cache-control", "no-store".to_string()),
            )
        }
        ("GET", "/v1/models") => (Endpoint::Other, models_response(shared)),
        ("GET", "/v1/fleet/summary") => {
            let host = shared.fleet.lock().expect("unpoisoned fleet");
            let body = host.sim.summary().to_json();
            (Endpoint::Summary, Response::json(200, body))
        }
        ("GET", "/v1/memory/summary") => (Endpoint::MemorySummary, memory_summary_response(shared)),
        ("GET", "/v1/autopilot/summary") => (Endpoint::Other, autopilot_summary_response(shared)),
        ("POST", "/v1/autopilot/enroll") => {
            let parsed = if request.body.is_empty() {
                Ok(EnrollRequest {
                    budget_messages_per_epoch: None,
                    budget_burst: None,
                })
            } else {
                parse_body::<EnrollRequest>(&request.body)
            };
            match parsed {
                Ok(body) => (Endpoint::Other, handle_enroll(shared, &body)),
                Err(response) => (Endpoint::Other, response),
            }
        }
        ("GET", "/healthz") => (Endpoint::Other, Response::text(200, "ok\n".to_string())),
        ("POST", "/v1/shutdown") => {
            initiate_shutdown(shared);
            (
                Endpoint::Shutdown,
                Response::json(200, "{\"draining\":true}".to_string()),
            )
        }
        ("POST", "/v1/plan") => match parse_body::<PlanRequest>(&request.body) {
            Ok(body) => (Endpoint::Plan, enqueue(shared, ApiCall::Plan(body))),
            Err(response) => (Endpoint::Plan, response),
        },
        ("POST", "/v1/plan/batch") => match parse_body::<Vec<PlanRequest>>(&request.body) {
            Ok(body) if body.len() > MAX_BATCH => (
                Endpoint::PlanBatch,
                Response::json(
                    400,
                    error_body(&format!(
                        "batch of {} exceeds the {MAX_BATCH}-element limit",
                        body.len()
                    )),
                ),
            ),
            Ok(body) => (
                Endpoint::PlanBatch,
                enqueue(shared, ApiCall::PlanBatch(body)),
            ),
            Err(response) => (Endpoint::PlanBatch, response),
        },
        ("POST", "/v1/telemetry") => match parse_body::<TelemetryRequest>(&request.body) {
            Ok(body) => (
                Endpoint::Telemetry,
                enqueue(shared, ApiCall::Telemetry(body)),
            ),
            Err(response) => (Endpoint::Telemetry, response),
        },
        (
            _,
            "/metrics"
            | "/v1/fleet/summary"
            | "/v1/memory/summary"
            | "/v1/autopilot/summary"
            | "/v1/autopilot/enroll"
            | "/healthz"
            | "/v1/shutdown"
            | "/v1/plan"
            | "/v1/plan/batch"
            | "/v1/telemetry"
            | "/v1/models",
        ) => (
            Endpoint::Other,
            Response::json(405, error_body("method not allowed")),
        ),
        _ => (
            Endpoint::Other,
            Response::json(404, error_body("no such endpoint")),
        ),
    }
}

fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("body is not UTF-8")))?;
    serde_json::from_str(text).map_err(|e| Response::json(400, error_body(&e.to_string())))
}

/// Queues a decision call and waits for the worker's reply, enforcing
/// backpressure and the per-request deadline.
fn enqueue(shared: &Shared, call: ApiCall) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::json(503, error_body("server is draining"))
            .with_header("retry-after", "1".to_string());
    }
    let deadline = Instant::now() + Duration::from_millis(shared.config.deadline_ms);
    let (reply, receive) = mpsc::channel();
    let job = Job {
        call,
        reply,
        deadline,
    };
    if shared.queue.try_push(job).is_err() {
        shared.metrics.record_rejection();
        return Response::json(503, error_body("queue full"))
            .with_header("retry-after", "1".to_string());
    }
    // A small grace past the deadline: the worker does the precise
    // deadline check, this just bounds the wait if a worker stalls.
    let wait = deadline
        .saturating_duration_since(Instant::now())
        .saturating_add(Duration::from_millis(250));
    match receive.recv_timeout(wait) {
        Ok(response) => response,
        Err(_) => {
            shared.metrics.record_timeout();
            Response::json(504, error_body("deadline exceeded"))
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if Instant::now() >= job.deadline {
            // The connection already answered 504 (or is about to);
            // don't spend engine time on an abandoned request.
            shared.metrics.record_timeout();
            let _ = job.reply.send(Response::json(
                504,
                error_body("deadline exceeded in queue"),
            ));
            continue;
        }
        if shared.config.debug_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.config.debug_delay_ms));
        }
        let response = match job.call {
            ApiCall::Plan(request) => handle_plan(shared, &request),
            ApiCall::PlanBatch(requests) => handle_plan_batch(shared, &requests),
            ApiCall::Telemetry(request) => handle_telemetry(shared, &request),
        };
        let _ = job.reply.send(response);
    }
}

// ---------------------------------------------------------------- handlers

/// `GET /v1/models`: the degradation-model zoo, with the server's
/// default and which models already hold a live decider.
fn models_response(shared: &Shared) -> Response {
    let default_key = shared.decider.flow().model_key().to_string();
    let loaded: Vec<String> = shared
        .model_deciders
        .read()
        .expect("unpoisoned model deciders")
        .keys()
        .cloned()
        .collect();
    let models: Vec<Value> = ModelSpec::NAMES
        .iter()
        .map(|name| {
            let spec = ModelSpec::by_name(name).expect("NAMES resolve");
            obj(vec![
                ("name", Value::Str((*name).to_string())),
                ("description", Value::Str(spec.description().to_string())),
                (
                    "loaded",
                    Value::Bool(*name == default_key || loaded.iter().any(|l| l == name)),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        render_value(&obj(vec![
            ("default", Value::Str(default_key)),
            ("models", Value::Seq(models)),
        ])),
    )
}

/// Resolves the decider answering a plan request: the server's default
/// for `model: null`, else a per-model decider built lazily on the
/// shared engine.
fn decider_for(shared: &Shared, model: Option<&str>) -> Result<Arc<Decider>, (u16, Value)> {
    let Some(name) = model else {
        return Ok(Arc::clone(&shared.decider));
    };
    if name == shared.decider.flow().model_key() {
        return Ok(Arc::clone(&shared.decider));
    }
    if let Some(decider) = shared
        .model_deciders
        .read()
        .expect("unpoisoned model deciders")
        .get(name)
    {
        return Ok(Arc::clone(decider));
    }
    let Some(spec) = ModelSpec::by_name(name) else {
        return Err((
            400,
            error_value(&format!(
                "unknown model {name:?}; options: {}",
                ModelSpec::NAMES.join(", ")
            )),
        ));
    };
    let mut config = shared.decider.config().clone();
    config.flow.model = Some(spec);
    let decider = match Decider::with_engine(&config, Arc::clone(&shared.engine)) {
        Ok(decider) => Arc::new(decider),
        Err(e) => return Err((500, error_value(&e.to_string()))),
    };
    let mut deciders = shared
        .model_deciders
        .write()
        .expect("unpoisoned model deciders");
    // A racing worker may have built it first; keep the stored one so
    // every request for a model shares its memos.
    Ok(Arc::clone(
        deciders.entry(name.to_string()).or_insert_with(|| decider),
    ))
}

/// `GET /v1/memory/summary`: the hosted fleet's weight-memory rollup
/// plus the thresholds it is judged against. `404` when the fleet runs
/// without the memory axis — exactly what the route answered before
/// the axis existed, so memory-off deployments see no change.
fn memory_summary_response(shared: &Shared) -> Response {
    use serde::Serialize;
    let Some(memory) = shared.decider.memory() else {
        return Response::json(404, error_body("memory axis disabled"));
    };
    let host = shared.fleet.lock().expect("unpoisoned fleet");
    let Some(fleet) = host.sim.summary().memory else {
        return Response::json(404, error_body("memory axis disabled"));
    };
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("cell_model", Value::Str(memory.cell.model_key())),
            (
                "reencode_threshold",
                Value::Float(memory.reencode_threshold),
            ),
            ("degrade_threshold", Value::Float(memory.degrade_threshold)),
            (
                "max_reencodes",
                Value::UInt(u64::from(memory.max_reencodes)),
            ),
            ("fleet", fleet.to_value()),
        ])),
    )
}

/// One plan decision as `(status, body value)`. Both `POST /v1/plan`
/// and every `POST /v1/plan/batch` element go through this one
/// function, which is what makes a batch element bit-identical to the
/// single call: the same `Value` tree renders in both places.
fn plan_value(shared: &Shared, request: &PlanRequest) -> (u16, Value) {
    let mv = request.delta_vth_mv;
    if !(mv.is_finite() && (0.0..=shared.config.max_mv + 1e-9).contains(&mv)) {
        return (
            400,
            error_value(&format!(
                "delta_vth_mv {mv} outside the served range 0–{} mV",
                shared.config.max_mv
            )),
        );
    }
    let decider = match decider_for(shared, request.model.as_deref()) {
        Ok(decider) => decider,
        Err(err) => return err,
    };
    let shift = VthShift::from_millivolts(mv);
    let decision = match request.constraint_factor {
        None => decider.decide_shift(shift),
        Some(factor) => {
            if !(factor > 0.0 && factor.is_finite()) {
                return (
                    400,
                    error_value(&format!("constraint_factor {factor} must be positive")),
                );
            }
            let constraint_ps = decider.flow().fresh_critical_path_ps() * factor;
            decider.decide_bucket_at(decider.bucket_of(shift), constraint_ps)
        }
    };
    match decision {
        Ok(decision) => (200, plan_response(&decider, &decision)),
        Err(e) => (500, error_value(&e.to_string())),
    }
}

fn handle_plan(shared: &Shared, request: &PlanRequest) -> Response {
    let (status, value) = plan_value(shared, request);
    Response::json(status, render_value(&value))
}

/// `POST /v1/plan/batch`: each element is decided independently and
/// reported with its own status, so one bad element cannot fail the
/// rest of the batch. The batch always answers `200`; per-element
/// errors live inside `results`.
fn handle_plan_batch(shared: &Shared, requests: &[PlanRequest]) -> Response {
    let results: Vec<Value> = requests
        .iter()
        .map(|request| {
            let (status, body) = plan_value(shared, request);
            obj(vec![
                ("status", Value::UInt(u64::from(status))),
                ("body", body),
            ])
        })
        .collect();
    Response::json(
        200,
        render_value(&obj(vec![("results", Value::Seq(results))])),
    )
}

/// `POST /v1/autopilot/enroll`: arms (or re-arms) the closed loop over
/// the hosted fleet. Idempotent — an enrolled fleet keeps its pilot
/// states and budget ledger; only the configuration is replaced.
fn handle_enroll(shared: &Shared, request: &EnrollRequest) -> Response {
    let mut autopilot = AutopilotConfig::demo();
    if let Some(rate) = request.budget_messages_per_epoch {
        autopilot.budget_messages_per_epoch = rate;
    }
    if let Some(burst) = request.budget_burst {
        autopilot.budget_burst = burst;
    }
    let mut host = shared.fleet.lock().expect("unpoisoned fleet");
    let already_armed = host.sim.config().autopilot.is_some();
    if let Err(e) = host.sim.arm_autopilot(autopilot.clone()) {
        return Response::json(400, error_body(&e.to_string()));
    }
    let enrolled = host.sim.chip_count() as u64;
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("enrolled", Value::UInt(enrolled)),
            ("already_armed", Value::Bool(already_armed)),
            (
                "budget_messages_per_epoch",
                Value::UInt(autopilot.budget_messages_per_epoch),
            ),
            ("budget_burst", Value::UInt(autopilot.budget_burst)),
        ])),
    )
}

/// `GET /v1/autopilot/summary`: the regime census and budget ledger,
/// plus the controller configuration driving them. `404` when the
/// fleet is not enrolled — exactly what the path answered before the
/// autopilot existed, so unenrolled deployments see no change.
fn autopilot_summary_response(shared: &Shared) -> Response {
    use serde::Serialize;
    let host = shared.fleet.lock().expect("unpoisoned fleet");
    let Some(config) = host.sim.config().autopilot.clone() else {
        return Response::json(404, error_body("autopilot not enrolled"));
    };
    let Some(fleet) = host.sim.summary().autopilot else {
        return Response::json(404, error_body("autopilot not enrolled"));
    };
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("config", config.to_value()),
            ("fleet", fleet.to_value()),
        ])),
    )
}

fn handle_telemetry(shared: &Shared, request: &TelemetryRequest) -> Response {
    let mut host = shared.fleet.lock().expect("unpoisoned fleet");
    let fleet_size = host.sim.chip_count();
    if request.chip as usize >= fleet_size {
        return Response::json(
            404,
            error_body(&format!(
                "chip {} not in the hosted fleet of {fleet_size}",
                request.chip
            )),
        );
    }
    let current = host.sim.epoch();
    if request.epoch > current + MAX_EPOCH_ADVANCE {
        return Response::json(
            400,
            error_body(&format!(
                "epoch {} is more than {MAX_EPOCH_ADVANCE} ahead of the fleet at {current}",
                request.epoch
            )),
        );
    }
    // Telemetry advances the model-driven fleet to the reported
    // epoch: each step replans exactly the chips that crossed a
    // bucket and journals the events. Reported ΔVth never overwrites
    // the model (the checkpoint must stay kinetics-consistent); it is
    // cross-checked in the response instead.
    while host.sim.epoch() < request.epoch {
        if let Err(e) = host.sim.step() {
            return Response::json(500, error_body(&e.to_string()));
        }
    }
    if let Err(e) = flush_journal(&shared.config, &mut host) {
        return Response::json(500, error_body(&e.to_string()));
    }

    let epoch = host.sim.epoch();
    let chip = host
        .sim
        .chip(request.chip as usize)
        .expect("chip index bounds-checked above");
    #[allow(clippy::cast_precision_loss)]
    let years = epoch as f64 * host.sim.config().epoch_years;
    let model_mv = chip.shift_at(years).millivolts();
    let consistent = request.delta_vth_mv.map(|reported| {
        let bucket_mv = host.sim.config().bucket_mv;
        (reported - model_mv).abs() < bucket_mv
    });
    // The report-vs-model residual feeds two consumers: the exported
    // `agequant_telemetry_residual_mv` gauge, and — when the chip is
    // enrolled — the autopilot's effective-rate estimator, so chips
    // drifting off the calibrated model earn tighter supervision.
    let residual = request.delta_vth_mv.map(|reported| reported - model_mv);
    if let Some(residual) = residual {
        shared.metrics.record_residual(residual);
        host.sim.report_residual(request.chip as usize, residual);
    }
    let pilot = host
        .sim
        .chip(request.chip as usize)
        .and_then(|chip| chip.pilot);
    let mut fields = vec![
        ("chip", Value::UInt(u64::from(chip.id))),
        ("epoch", Value::UInt(epoch)),
        ("stale", Value::Bool(request.epoch < epoch)),
        ("bucket", Value::UInt(chip.bucket)),
        ("mode", Value::Str(mode_label(chip.mode).to_string())),
        ("model_delta_vth_mv", Value::Float(model_mv)),
    ];
    if let Some(consistent) = consistent {
        fields.push(("reported_consistent", Value::Bool(consistent)));
    }
    if let Some(residual) = residual {
        fields.push(("residual_mv", Value::Float(residual)));
    }
    // Cadence hint for enrolled chips: the regime the controller holds
    // the chip in and when it next wants a sample, so well-behaved
    // clients stop polling between scheduled epochs. Unenrolled fleets
    // keep the exact pre-autopilot response bytes.
    if let Some(pilot) = pilot {
        fields.push((
            "autopilot",
            obj(vec![
                ("regime", Value::Str(pilot.regime.name().to_string())),
                ("rate_mv_per_epoch", Value::Float(pilot.rate_mv_per_epoch)),
                ("next_sample_epoch", Value::UInt(pilot.next_epoch)),
            ]),
        ));
    }
    Response::json(200, render_value(&obj(fields)))
}

/// Appends journal events past the flushed cursor to the configured
/// journal file.
fn flush_journal(config: &ServeConfig, host: &mut FleetHost) -> Result<(), ServeError> {
    let Some(path) = &config.journal else {
        return Ok(());
    };
    let events = host.sim.journal();
    if host.flushed >= events.len() {
        return Ok(());
    }
    let text = journal::to_jsonl(&events[host.flushed..]);
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
    file.write_all(text.as_bytes())
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
    host.flushed = events.len();
    Ok(())
}

/// Writes the hosted fleet's checkpoint, for post-run linting.
///
/// A `.bin` path gets the versioned, checksummed binary frame; any
/// other extension gets the legacy JSON form. Either way the write is
/// atomic (temp file + rename), so a crash mid-write cannot destroy a
/// previous checkpoint at the same path.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the file cannot be written.
pub fn write_checkpoint(handle: &ServerHandle, path: &str) -> Result<(), ServeError> {
    let host = handle.shared.fleet.lock().expect("unpoisoned fleet");
    let bytes = if std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "bin")
    {
        // Shard-direct encode: skips materializing a Vec<Chip> of the
        // whole hosted fleet while the fleet lock is held.
        host.sim
            .checkpoint_binary()
            .map_err(|e| ServeError::Io(format!("{path}: {e}")))?
    } else {
        host.sim.to_state().to_json().into_bytes()
    };
    agequant_fleet::persist::atomic_write(std::path::Path::new(path), &bytes)
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))
}

// ---------------------------------------------------------------- responses

fn mode_label(mode: agequant_fleet::ChipMode) -> &'static str {
    match mode {
        agequant_fleet::ChipMode::Compressed => "compressed",
        agequant_fleet::ChipMode::Guardband => "guardband",
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render_value(value: &Value) -> String {
    serde_json::to_string(value).expect("response values are finite")
}

/// An error body as a value tree, for embedding in batch results.
fn error_value(message: &str) -> Value {
    obj(vec![("error", Value::Str(message.to_string()))])
}

/// Serializes an error body.
fn error_body(message: &str) -> String {
    render_value(&error_value(message))
}

/// The `/v1/plan` response for a decision — public so the integration
/// tests build the expected bytes from a direct [`Decider`] call and
/// compare bit-for-bit with what came over the wire.
#[must_use]
pub fn plan_response(decider: &Decider, decision: &Decision) -> Value {
    use serde::Serialize;
    let bucket = decision.bucket();
    let mut fields = vec![
        ("bucket", Value::UInt(bucket)),
        (
            "planned_shift_mv",
            Value::Float(decider.bucket_shift(bucket).millivolts()),
        ),
    ];
    match decision {
        Decision::Plan(plan) => {
            fields.push(("mode", Value::Str("compressed".to_string())));
            fields.push((
                "alpha",
                Value::UInt(u64::from(plan.plan.compression.alpha())),
            ));
            fields.push(("beta", Value::UInt(u64::from(plan.plan.compression.beta()))));
            fields.push(("padding", plan.plan.padding.to_value()));
            fields.push(("method", plan.method.map_or(Value::Null, |m| m.to_value())));
            fields.push((
                "accuracy_loss_pct",
                plan.accuracy_loss_pct.map_or(Value::Null, Value::Float),
            ));
            fields.push((
                "compressed_delay_ps",
                Value::Float(plan.plan.compressed_delay_ps),
            ));
            fields.push(("constraint_ps", Value::Float(plan.plan.constraint_ps)));
        }
        Decision::Degrade { .. } => {
            fields.push(("mode", Value::Str("guardband".to_string())));
            fields.push((
                "guardband_period_ps",
                Value::Float(decider.guardband_period_ps()),
            ));
            fields.push(("constraint_ps", Value::Float(decider.constraint_ps())));
        }
    }
    // Memory-axis projection for the chosen plan: only when the server
    // tracks the memory axis, so memory-off deployments keep the exact
    // pre-memory wire bytes (pinned by the fixture test). The planned
    // weight truncation β selects the stored-bit asymmetry the cells
    // will integrate, so this is where a plan's memory cost shows up.
    if let Some(memory) = decider.memory() {
        let beta = match decision {
            Decision::Plan(plan) => plan.plan.compression.beta(),
            Decision::Degrade { .. } => 0,
        };
        let asymmetry = memory.asymmetry_for_beta(beta);
        fields.push((
            "memory",
            obj(vec![
                ("asymmetry", Value::Float(asymmetry)),
                (
                    "stress_duty",
                    Value::Float(memory.cell.stress_duty(asymmetry)),
                ),
                (
                    "failure_prob_10y",
                    Value::Float(memory.cell.failure_prob(asymmetry, 10.0, 0)),
                ),
                (
                    "failure_prob_10y_reencoded",
                    Value::Float(
                        memory
                            .cell
                            .failure_prob(asymmetry, 10.0, memory.max_reencodes),
                    ),
                ),
            ]),
        ));
    }
    obj(fields)
}
