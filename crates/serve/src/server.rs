//! The concurrent decision server: a wire-speed table plane in front
//! of a bounded-queue worker pool with explicit backpressure over the
//! shared [`Decider`].
//!
//! ## Architecture
//!
//! A small set of readiness-polled event loops (`crate::event_loop`,
//! one by default) owns every connection: parsing, response writes,
//! idle sweeping, deadlines, and the drain all run there — no thread
//! per connection, so ten thousand idle keep-alive clients cost one
//! file descriptor apiece.
//!
//! Requests are answered at one of three costs:
//!
//! 1. **Table hits** — `POST /v1/plan` (and all-table batches) whose
//!    decision is in the immutable prerendered [`PlanSet`]: answered
//!    on the event loop from an `Arc<str>` body. No lock, no queue,
//!    no engine; the plan bytes were rendered once at table build.
//! 2. **Inline reads** — `/metrics`, summaries: answered on the loop,
//!    reading atomics or taking a short lock.
//! 3. **Worker jobs** — telemetry, constraint overrides, models not
//!    yet materialized: queued on the bounded queue. A full queue
//!    answers `503` with `Retry-After` immediately — the queue bound
//!    is the server's only buffer, so memory stays flat under
//!    overload. Each job carries a deadline; the loop's sweep answers
//!    `504` when it passes, and a worker popping an already-expired
//!    job drops it instead of burning engine time on an abandoned
//!    reply.
//!
//! Table bytes and worker bytes are the same bytes: both render
//! through [`plan_response`], so a client cannot tell which plane
//! answered. New per-model tables are published by atomically
//! swapping the [`PlanSet`] (an `agequant-fleet` [`Swap`], whose
//! publish/subscribe protocol is model-checked in `agequant-check`'s
//! `model_table` suite); readers never block on a publish.
//!
//! ## Shutdown
//!
//! `POST /v1/shutdown` (or [`ServerHandle::shutdown`]) flips one
//! flag. The loops drop the listener (closing the port), workers
//! drain every job already queued, in-flight responses flush with
//! `connection: close`, idle connections are swept, and
//! [`ServerHandle::join`] returns when every loop has wound down.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use agequant_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use agequant_check::sync::{Arc, Mutex, RwLock};
use agequant_check::thread::{self, JoinHandle};

use agequant_aging::{ModelSpec, VthShift};
use agequant_core::EvalEngine;
use agequant_fleet::{
    journal, AutopilotConfig, Decider, Decision, DecisionTable, FleetConfig, FleetSim, Swap,
    SwapReader,
};
use serde::{Deserialize, Value};

use crate::config::ServeConfig;
use crate::event_loop::{self, Completion, LoopShared, Token};
use crate::http::{Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::queue::BoundedQueue;
use crate::ServeError;

/// Telemetry may advance the hosted fleet at most this many epochs in
/// one request, bounding worst-case work per call.
const MAX_EPOCH_ADVANCE: u64 = 10_000;
/// `POST /v1/plan/batch` accepts at most this many elements, bounding
/// the engine time one queued job can consume.
const MAX_BATCH: usize = 1024;

/// `POST /v1/plan` body.
#[derive(Debug, Deserialize)]
struct PlanRequest {
    /// Measured ΔVth, millivolts.
    delta_vth_mv: f64,
    /// Optional constraint override as a fraction of the fresh
    /// critical path (the fleet's configured factor when absent).
    constraint_factor: Option<f64>,
    /// Optional degradation-model selector (a zoo name from
    /// `GET /v1/models`); the server's configured model when absent,
    /// so pre-existing clients see byte-identical responses.
    model: Option<String>,
}

/// `POST /v1/telemetry` body.
#[derive(Debug, Deserialize)]
struct TelemetryRequest {
    /// Chip id in the hosted fleet.
    chip: u32,
    /// The epoch the sample was taken at.
    epoch: u64,
    /// Optionally, the chip's measured ΔVth for cross-checking
    /// against the model (never mutates server state).
    delta_vth_mv: Option<f64>,
}

/// `POST /v1/autopilot/enroll` body: optional overrides on the demo
/// controller. An empty body enrolls with the stock configuration.
#[derive(Debug, Deserialize)]
struct EnrollRequest {
    /// Telemetry tokens added to the fleet bucket each epoch.
    budget_messages_per_epoch: Option<u64>,
    /// Bucket capacity: the largest burst one epoch may spend.
    budget_burst: Option<u64>,
}

/// A parsed decision call waiting for a worker.
enum ApiCall {
    Plan(PlanRequest),
    PlanBatch(Vec<PlanRequest>),
    Telemetry(TelemetryRequest),
}

/// One queued unit of work, addressed back to its connection by token.
struct Job {
    call: ApiCall,
    token: Token,
    deadline: Instant,
}

/// The hosted fleet plus its incremental journal cursor.
struct FleetHost {
    sim: FleetSim,
    /// Journal events already flushed to the journal file.
    flushed: usize,
}

/// Prerendered `/v1/plan` response bodies for one model: index by
/// bucket, answer with an `Arc<str>` clone — the wire-speed path.
pub(crate) struct RenderedPlans {
    /// The decider whose grid maps ΔVth onto body indices (and whose
    /// decisions the bodies render).
    decider: Arc<Decider>,
    bodies: Vec<Arc<str>>,
}

impl RenderedPlans {
    /// Renders every bucket of `table` through [`plan_response`] on
    /// `decider` — the same function the worker path uses, which is
    /// what makes a table hit bit-identical to a live decision.
    /// `None` if the table is missing a served bucket (cannot happen
    /// for a [`DecisionTable::build`] product over the served range).
    fn render(decider: &Arc<Decider>, table: &DecisionTable) -> Option<Self> {
        let constraint = decider.constraint_ps();
        let mut bodies = Vec::with_capacity(table.max_bucket() as usize + 1);
        for bucket in 0..=table.max_bucket() {
            let decision = table.lookup(bucket, constraint)?;
            let body = render_value(&plan_response(decider, &decision));
            bodies.push(Arc::from(body.into_boxed_str()));
        }
        Some(RenderedPlans {
            decider: Arc::clone(decider),
            bodies,
        })
    }

    fn body_for(&self, mv: f64) -> Option<&Arc<str>> {
        let bucket = self.decider.bucket_of(VthShift::from_millivolts(mv));
        usize::try_from(bucket)
            .ok()
            .and_then(|b| self.bodies.get(b))
    }
}

/// The immutable set of prerendered plan tables, one per materialized
/// model, swapped atomically as the model zoo is exercised.
pub(crate) struct PlanSet {
    /// The server's configured model key — what `model: null` means.
    default_key: String,
    by_model: BTreeMap<String, Arc<RenderedPlans>>,
}

/// How a routed request is answered.
pub(crate) enum Routed {
    /// Answered on the event loop: render `Reply` and move on.
    Ready(Reply),
    /// Parked on the worker pool; a [`Completion`] will arrive.
    Pending,
}

/// A response the event loop can write without a worker.
pub(crate) enum Reply {
    Full(Response),
    /// A prerendered table body: the head is rendered per-connection
    /// (keep-alive differs), the body bytes are shared.
    Table {
        status: u16,
        body: Arc<str>,
    },
}

impl Reply {
    pub(crate) fn status(&self) -> u16 {
        match self {
            Reply::Full(response) => response.status,
            Reply::Table { status, .. } => *status,
        }
    }

    pub(crate) fn render(&self, out: &mut Vec<u8>, keep_alive: bool) {
        match self {
            Reply::Full(response) => response.render_to(out, keep_alive),
            Reply::Table { status, body } => {
                Response::render_head(
                    out,
                    *status,
                    "application/json",
                    body.len(),
                    keep_alive,
                    &[],
                );
                out.extend_from_slice(body.as_bytes());
            }
        }
    }
}

/// State shared by the event loops and workers.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    addr: SocketAddr,
    decider: Arc<Decider>,
    /// The engine every decider (default and per-model) plans through;
    /// cache entries are model-keyed, so sharing is safe and the
    /// `/metrics` split stays exact.
    engine: Arc<EvalEngine>,
    /// Lazily built deciders for non-default zoo models requested via
    /// `POST /v1/plan`'s `model` field, keyed by zoo name.
    model_deciders: RwLock<BTreeMap<String, Arc<Decider>>>,
    fleet: Mutex<FleetHost>,
    pub(crate) metrics: Metrics,
    queue: BoundedQueue<Job>,
    /// The swap cell behind every event loop's table reader.
    plans: Swap<PlanSet>,
    /// Table answers allowed? Off when `debug_delay_ms` is set: that
    /// knob exists to simulate slow decisions, and a table hit would
    /// skip the queue the delay is meant to exercise.
    fast_path: bool,
    pub(crate) loops: Vec<Arc<LoopShared>>,
    pub(crate) next_loop: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn plans_reader(&self) -> SwapReader<PlanSet> {
        SwapReader::new(&self.plans)
    }
}

/// A running server. Dropping the handle does NOT stop the server;
/// call [`ServerHandle::shutdown`] (or hit `POST /v1/shutdown`) and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    loops: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared decision core — the reference tests compare server
    /// responses against.
    #[must_use]
    pub fn decider(&self) -> Arc<Decider> {
        Arc::clone(&self.shared.decider)
    }

    /// Requests a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_draining()
    }

    /// Waits for the drain to complete: listener closed, queue empty,
    /// workers exited, every connection wound down by its loop. The
    /// handle stays usable afterwards (e.g. for [`write_checkpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(&mut self) {
        for handle in self.loops.drain(..) {
            handle.join().expect("event loop thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
    }

    /// Convenience: shutdown then join.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn shutdown_and_join(mut self) {
        self.shutdown();
        self.join();
    }
}

/// The largest bucket any in-range `/v1/plan` request can map to —
/// the decision tables cover exactly the served ΔVth range.
fn max_served_bucket(config: &ServeConfig, decider: &Decider) -> u64 {
    decider.bucket_of(VthShift::from_millivolts(config.max_mv + 1e-9))
}

/// Event loops to run: `AGEQUANT_SERVE_LOOPS` (1–64), default 1 —
/// one loop saturates a small core count; more shard the fd set.
fn loop_threads() -> usize {
    std::env::var("AGEQUANT_SERVE_LOOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| (1..=64).contains(n))
        .unwrap_or(1)
}

/// Builds and starts the server: binds the address, plans the hosted
/// fleet's epoch-0 decisions (warming the engine), materializes the
/// default model's decision table, seeds the journal file, and spawns
/// the event loop and worker threads.
///
/// # Errors
///
/// Returns [`ServeError::Config`] on an invalid configuration,
/// [`ServeError::Fleet`] if the decision core cannot be built, or
/// [`ServeError::Io`] if the address cannot be bound or the journal
/// cannot be created.
pub fn start(config: ServeConfig, fleet_config: FleetConfig) -> Result<ServerHandle, ServeError> {
    config.validate()?;
    let mut fleet_config = fleet_config;
    fleet_config.chips = config.fleet_chips;
    fleet_config.seed = config.fleet_seed;
    let engine = Arc::new(EvalEngine::new(fleet_config.flow.process.clone()));
    let decider = Arc::new(
        Decider::with_engine(&fleet_config, Arc::clone(&engine)).map_err(ServeError::Fleet)?,
    );
    let sim = FleetSim::new_with_decider(Arc::clone(&decider)).map_err(ServeError::Fleet)?;

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::Io(e.to_string()))?;

    let mut host = FleetHost { sim, flushed: 0 };
    if let Some(path) = &config.journal {
        // Each server run owns its journal file from epoch 0, so the
        // file alone satisfies the journal causality lint.
        std::fs::write(path, "").map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
        flush_journal(&config, &mut host)?;
    }

    // Materialize the default model's decision table on a throwaway
    // decider (its own engine), so the shared engine's cache counters
    // keep reflecting exactly the fleet warm-up plus live traffic.
    let default_key = decider.flow().model_key().to_string();
    let mut by_model = BTreeMap::new();
    if let Ok(scratch) = Decider::from_config(&fleet_config) {
        if let Ok(table) = DecisionTable::build(&scratch, max_served_bucket(&config, &decider), &[])
        {
            decider.install_table(table.clone());
            if let Some(rendered) = RenderedPlans::render(&decider, &table) {
                by_model.insert(default_key.clone(), Arc::new(rendered));
            }
        }
    }
    let plans = Swap::new(Arc::new(PlanSet {
        default_key,
        by_model,
    }));

    let loop_count = loop_threads();
    let mut wakers = Vec::with_capacity(loop_count);
    let mut loop_shareds = Vec::with_capacity(loop_count);
    for _ in 0..loop_count {
        let (rx, tx) = event_loop::waker_pair().map_err(|e| ServeError::Io(e.to_string()))?;
        loop_shareds.push(Arc::new(LoopShared::new(tx)));
        wakers.push(rx);
    }

    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth as usize),
        fast_path: config.debug_delay_ms == 0,
        config,
        addr,
        decider,
        engine,
        model_deciders: RwLock::new(BTreeMap::new()),
        fleet: Mutex::new(host),
        metrics: Metrics::new(),
        plans,
        loops: loop_shareds,
        next_loop: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
    });

    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let mut listener = Some(listener);
    let loops = wakers
        .into_iter()
        .enumerate()
        .map(|(i, waker_rx)| {
            let shared = Arc::clone(&shared);
            let listener = if i == 0 { listener.take() } else { None };
            thread::Builder::new()
                .name(format!("serve-loop-{i}"))
                .spawn(move || event_loop::run(shared, i, listener, waker_rx))
                .expect("spawn event loop")
        })
        .collect();

    Ok(ServerHandle {
        shared,
        loops,
        workers,
    })
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Closing refuses new work and wakes every worker to drain the
    // backlog; the queue hands out `None` once it runs dry.
    shared.queue.close();
    // Kick every event loop so the drain starts without waiting for
    // the next poll tick.
    for lp in &shared.loops {
        lp.wake();
    }
}

// ------------------------------------------------------------- fast paths

/// The wire-speed single-plan path: answers from the prerendered
/// table without touching a lock, the queue, or the engine. `None`
/// falls through to the worker path (constraint overrides, models
/// without a materialized table, or the fast path disabled).
fn fast_plan(
    shared: &Shared,
    plans: &mut SwapReader<PlanSet>,
    request: &PlanRequest,
) -> Option<Reply> {
    if !shared.fast_path || request.constraint_factor.is_some() {
        return None;
    }
    let set = plans.get(&shared.plans);
    let key = request.model.as_deref().unwrap_or(&set.default_key);
    let rendered = set.by_model.get(key)?;
    let mv = request.delta_vth_mv;
    if !served_range(shared, mv) {
        // Validation is part of the fast path — a request that never
        // touches the engine shouldn't queue just to be refused.
        return Some(Reply::Full(Response::json(
            400,
            error_body(&range_message(shared, mv)),
        )));
    }
    let body = Arc::clone(rendered.body_for(mv)?);
    shared.metrics.record_table_hits(1);
    Some(Reply::Table { status: 200, body })
}

/// The wire-speed batch path: every element must be answerable from
/// the prerendered tables (validation included); one element needing
/// live work sends the whole batch to the workers unchanged.
fn fast_batch(
    shared: &Shared,
    plans: &mut SwapReader<PlanSet>,
    requests: &[PlanRequest],
) -> Option<Reply> {
    if !shared.fast_path {
        return None;
    }
    let set = Arc::clone(plans.get(&shared.plans));
    let mut out = String::with_capacity(16 + requests.len() * 192);
    out.push_str("{\"results\":[");
    for (i, request) in requests.iter().enumerate() {
        if request.constraint_factor.is_some() {
            return None;
        }
        let key = request.model.as_deref().unwrap_or(&set.default_key);
        let rendered = set.by_model.get(key)?;
        if i > 0 {
            out.push(',');
        }
        let mv = request.delta_vth_mv;
        if served_range(shared, mv) {
            let body = rendered.body_for(mv)?;
            out.push_str("{\"status\":200,\"body\":");
            out.push_str(body);
        } else {
            out.push_str("{\"status\":400,\"body\":");
            out.push_str(&error_body(&range_message(shared, mv)));
        }
        out.push('}');
    }
    out.push_str("]}");
    shared.metrics.record_table_hits(requests.len() as u64);
    Some(Reply::Full(Response::json(200, out)))
}

fn served_range(shared: &Shared, mv: f64) -> bool {
    mv.is_finite() && (0.0..=shared.config.max_mv + 1e-9).contains(&mv)
}

/// The out-of-range refusal — one format string, so the fast path,
/// the worker path, and batch elements emit identical bytes.
fn range_message(shared: &Shared, mv: f64) -> String {
    format!(
        "delta_vth_mv {mv} outside the served range 0–{} mV",
        shared.config.max_mv
    )
}

// --------------------------------------------------------------- routing

/// Dispatches one request. Table hits and read endpoints answer on
/// the event loop; decision endpoints go through the bounded queue.
pub(crate) fn route(
    shared: &Arc<Shared>,
    request: &Request,
    token: Token,
    plans: &mut SwapReader<PlanSet>,
) -> (Endpoint, Routed) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/metrics") => {
            let stats = shared.engine.stats();
            let by_model = shared.engine.stats_by_model();
            // The memory and autopilot rollups need the fleet summary;
            // scrapes only pay for building it when an axis is live.
            let (memory, autopilot) = {
                let host = shared.fleet.lock().expect("unpoisoned fleet");
                let wants =
                    shared.decider.memory().is_some() || host.sim.config().autopilot.is_some();
                if wants {
                    let summary = host.sim.summary();
                    (summary.memory, summary.autopilot)
                } else {
                    (None, None)
                }
            };
            let text = shared.metrics.render(
                shared.queue.len(),
                &stats,
                &by_model,
                memory.as_ref(),
                autopilot.as_ref(),
            );
            (
                Endpoint::Metrics,
                ready(
                    Response::text(200, text).with_header("cache-control", "no-store".to_string()),
                ),
            )
        }
        ("GET", "/v1/models") => (Endpoint::Other, ready(models_response(shared))),
        ("GET", "/v1/fleet/summary") => {
            let host = shared.fleet.lock().expect("unpoisoned fleet");
            let body = host.sim.summary().to_json();
            (Endpoint::Summary, ready(Response::json(200, body)))
        }
        ("GET", "/v1/memory/summary") => (
            Endpoint::MemorySummary,
            ready(memory_summary_response(shared)),
        ),
        ("GET", "/v1/autopilot/summary") => {
            (Endpoint::Other, ready(autopilot_summary_response(shared)))
        }
        ("POST", "/v1/autopilot/enroll") => {
            let parsed = if request.body.is_empty() {
                Ok(EnrollRequest {
                    budget_messages_per_epoch: None,
                    budget_burst: None,
                })
            } else {
                parse_body::<EnrollRequest>(&request.body)
            };
            match parsed {
                Ok(body) => (Endpoint::Other, ready(handle_enroll(shared, &body))),
                Err(response) => (Endpoint::Other, ready(response)),
            }
        }
        ("GET", "/healthz") => (
            Endpoint::Other,
            ready(Response::text(200, "ok\n".to_string())),
        ),
        ("POST", "/v1/shutdown") => {
            initiate_shutdown(shared);
            (
                Endpoint::Shutdown,
                ready(Response::json(200, "{\"draining\":true}".to_string())),
            )
        }
        ("POST", "/v1/plan") => match parse_body::<PlanRequest>(&request.body) {
            Ok(body) => {
                if let Some(reply) = fast_plan(shared, plans, &body) {
                    (Endpoint::Plan, Routed::Ready(reply))
                } else {
                    (Endpoint::Plan, enqueue(shared, ApiCall::Plan(body), token))
                }
            }
            Err(response) => (Endpoint::Plan, ready(response)),
        },
        ("POST", "/v1/plan/batch") => match parse_body::<Vec<PlanRequest>>(&request.body) {
            Ok(body) if body.len() > MAX_BATCH => (
                Endpoint::PlanBatch,
                ready(Response::json(
                    400,
                    error_body(&format!(
                        "batch of {} exceeds the {MAX_BATCH}-element limit",
                        body.len()
                    )),
                )),
            ),
            Ok(body) => {
                if let Some(reply) = fast_batch(shared, plans, &body) {
                    (Endpoint::PlanBatch, Routed::Ready(reply))
                } else {
                    (
                        Endpoint::PlanBatch,
                        enqueue(shared, ApiCall::PlanBatch(body), token),
                    )
                }
            }
            Err(response) => (Endpoint::PlanBatch, ready(response)),
        },
        ("POST", "/v1/telemetry") => match parse_body::<TelemetryRequest>(&request.body) {
            Ok(body) => (
                Endpoint::Telemetry,
                enqueue(shared, ApiCall::Telemetry(body), token),
            ),
            Err(response) => (Endpoint::Telemetry, ready(response)),
        },
        (
            _,
            "/metrics"
            | "/v1/fleet/summary"
            | "/v1/memory/summary"
            | "/v1/autopilot/summary"
            | "/v1/autopilot/enroll"
            | "/healthz"
            | "/v1/shutdown"
            | "/v1/plan"
            | "/v1/plan/batch"
            | "/v1/telemetry"
            | "/v1/models",
        ) => (
            Endpoint::Other,
            ready(Response::json(405, error_body("method not allowed"))),
        ),
        _ => (
            Endpoint::Other,
            ready(Response::json(404, error_body("no such endpoint"))),
        ),
    }
}

fn ready(response: Response) -> Routed {
    Routed::Ready(Reply::Full(response))
}

fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, error_body("body is not UTF-8")))?;
    serde_json::from_str(text).map_err(|e| Response::json(400, error_body(&e.to_string())))
}

/// Queues a decision call, enforcing backpressure; the worker's reply
/// comes back through the owning event loop's inbox.
fn enqueue(shared: &Shared, call: ApiCall, token: Token) -> Routed {
    if shared.is_draining() {
        return ready(
            Response::json(503, error_body("server is draining"))
                .with_header("retry-after", "1".to_string()),
        );
    }
    let deadline = Instant::now() + Duration::from_millis(shared.config.deadline_ms);
    let job = Job {
        call,
        token,
        deadline,
    };
    if shared.queue.try_push(job).is_err() {
        shared.metrics.record_rejection();
        return ready(
            Response::json(503, error_body("queue full"))
                .with_header("retry-after", "1".to_string()),
        );
    }
    Routed::Pending
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if Instant::now() >= job.deadline {
            // The loop's deadline sweep already answered 504 (or is
            // about to); don't spend engine time on an abandoned
            // request.
            shared.metrics.record_timeout();
            deliver(
                shared,
                job.token,
                Response::json(504, error_body("deadline exceeded in queue")),
            );
            continue;
        }
        if shared.config.debug_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.config.debug_delay_ms));
        }
        let response = match job.call {
            ApiCall::Plan(request) => handle_plan(shared, &request),
            ApiCall::PlanBatch(requests) => handle_plan_batch(shared, &requests),
            ApiCall::Telemetry(request) => handle_telemetry(shared, &request),
        };
        deliver(shared, job.token, response);
    }
}

/// Routes a worker's reply back to the event loop owning the
/// connection; the token's generation retires it if the connection
/// already gave up.
fn deliver(shared: &Shared, token: Token, response: Response) {
    let lp = &shared.loops[token.loop_idx];
    lp.deliver(Completion { token, response });
    lp.wake();
}

// ---------------------------------------------------------------- handlers

/// `GET /v1/models`: the degradation-model zoo, with the server's
/// default and which models already hold a live decider.
fn models_response(shared: &Shared) -> Response {
    let default_key = shared.decider.flow().model_key().to_string();
    let loaded: Vec<String> = shared
        .model_deciders
        .read()
        .expect("unpoisoned model deciders")
        .keys()
        .cloned()
        .collect();
    let models: Vec<Value> = ModelSpec::NAMES
        .iter()
        .map(|name| {
            let spec = ModelSpec::by_name(name).expect("NAMES resolve");
            obj(vec![
                ("name", Value::Str((*name).to_string())),
                ("description", Value::Str(spec.description().to_string())),
                (
                    "loaded",
                    Value::Bool(*name == default_key || loaded.iter().any(|l| l == name)),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        render_value(&obj(vec![
            ("default", Value::Str(default_key)),
            ("models", Value::Seq(models)),
        ])),
    )
}

/// Resolves the decider answering a plan request: the server's default
/// for `model: null`, else a per-model decider built lazily on the
/// shared engine. Building a model also materializes its decision
/// table and publishes its prerendered plan bodies, so only a model's
/// *first* request pays for live characterization.
fn decider_for(shared: &Shared, model: Option<&str>) -> Result<Arc<Decider>, (u16, Value)> {
    let Some(name) = model else {
        return Ok(Arc::clone(&shared.decider));
    };
    if name == shared.decider.flow().model_key() {
        return Ok(Arc::clone(&shared.decider));
    }
    if let Some(decider) = shared
        .model_deciders
        .read()
        .expect("unpoisoned model deciders")
        .get(name)
    {
        return Ok(Arc::clone(decider));
    }
    let Some(spec) = ModelSpec::by_name(name) else {
        return Err((
            400,
            error_value(&format!(
                "unknown model {name:?}; options: {}",
                ModelSpec::NAMES.join(", ")
            )),
        ));
    };
    let mut config = shared.decider.config().clone();
    config.flow.model = Some(spec);
    let decider = match Decider::with_engine(&config, Arc::clone(&shared.engine)) {
        Ok(decider) => Arc::new(decider),
        Err(e) => return Err((500, error_value(&e.to_string()))),
    };
    // Materialize the model's decision table through the decider
    // itself: the characterizations land in the shared engine's
    // model-keyed cache counters exactly like live traffic would, and
    // every later request for this model is a pure table read.
    if let Ok(table) =
        DecisionTable::build(&decider, max_served_bucket(&shared.config, &decider), &[])
    {
        decider.install_table(table);
    }
    let mut deciders = shared
        .model_deciders
        .write()
        .expect("unpoisoned model deciders");
    // A racing worker may have built it first; keep the stored one so
    // every request for a model shares its memos.
    let decider = Arc::clone(deciders.entry(name.to_string()).or_insert(decider));
    // Publish the prerendered bodies while still holding the write
    // lock: it serializes publishes, so two models materializing at
    // once cannot drop each other's tables from the set.
    if shared.fast_path {
        let current = shared.plans.load();
        if !current.by_model.contains_key(name) {
            let installed = decider.table();
            if let Some(table) = installed.as_ref() {
                if let Some(rendered) = RenderedPlans::render(&decider, table) {
                    let mut by_model = current.by_model.clone();
                    by_model.insert(name.to_string(), Arc::new(rendered));
                    shared.plans.publish(Arc::new(PlanSet {
                        default_key: current.default_key.clone(),
                        by_model,
                    }));
                }
            }
        }
    }
    drop(deciders);
    Ok(decider)
}

/// `GET /v1/memory/summary`: the hosted fleet's weight-memory rollup
/// plus the thresholds it is judged against. `404` when the fleet runs
/// without the memory axis — exactly what the route answered before
/// the axis existed, so memory-off deployments see no change.
fn memory_summary_response(shared: &Shared) -> Response {
    use serde::Serialize;
    let Some(memory) = shared.decider.memory() else {
        return Response::json(404, error_body("memory axis disabled"));
    };
    let host = shared.fleet.lock().expect("unpoisoned fleet");
    let Some(fleet) = host.sim.summary().memory else {
        return Response::json(404, error_body("memory axis disabled"));
    };
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("cell_model", Value::Str(memory.cell.model_key())),
            (
                "reencode_threshold",
                Value::Float(memory.reencode_threshold),
            ),
            ("degrade_threshold", Value::Float(memory.degrade_threshold)),
            (
                "max_reencodes",
                Value::UInt(u64::from(memory.max_reencodes)),
            ),
            ("fleet", fleet.to_value()),
        ])),
    )
}

/// One plan decision as `(status, body value)`. Both `POST /v1/plan`
/// and every `POST /v1/plan/batch` element go through this one
/// function, which is what makes a batch element bit-identical to the
/// single call: the same `Value` tree renders in both places. The
/// decision itself prefers the model's table (counted as a table hit)
/// and falls back to a live engine decision on a miss.
fn plan_value(shared: &Shared, request: &PlanRequest) -> (u16, Value) {
    let mv = request.delta_vth_mv;
    if !served_range(shared, mv) {
        return (400, error_value(&range_message(shared, mv)));
    }
    let decider = match decider_for(shared, request.model.as_deref()) {
        Ok(decider) => decider,
        Err(err) => return err,
    };
    let shift = VthShift::from_millivolts(mv);
    let decision = match request.constraint_factor {
        None => {
            let mut reader = decider.table_reader();
            match decider.lookup_or_decide(
                &mut reader,
                decider.bucket_of(shift),
                decider.constraint_ps(),
            ) {
                Ok((decision, true)) => {
                    shared.metrics.record_table_hits(1);
                    Ok(decision)
                }
                Ok((decision, false)) => {
                    shared.metrics.record_table_misses(1);
                    Ok(decision)
                }
                Err(e) => Err(e),
            }
        }
        Some(factor) => {
            if !(factor > 0.0 && factor.is_finite()) {
                return (
                    400,
                    error_value(&format!("constraint_factor {factor} must be positive")),
                );
            }
            let constraint_ps = decider.flow().fresh_critical_path_ps() * factor;
            shared.metrics.record_table_misses(1);
            decider.decide_bucket_at(decider.bucket_of(shift), constraint_ps)
        }
    };
    match decision {
        Ok(decision) => (200, plan_response(&decider, &decision)),
        Err(e) => (500, error_value(&e.to_string())),
    }
}

fn handle_plan(shared: &Shared, request: &PlanRequest) -> Response {
    let (status, value) = plan_value(shared, request);
    Response::json(status, render_value(&value))
}

/// `POST /v1/plan/batch`: each element is decided independently and
/// reported with its own status, so one bad element cannot fail the
/// rest of the batch. The batch always answers `200`; per-element
/// errors live inside `results`.
fn handle_plan_batch(shared: &Shared, requests: &[PlanRequest]) -> Response {
    let results: Vec<Value> = requests
        .iter()
        .map(|request| {
            let (status, body) = plan_value(shared, request);
            obj(vec![
                ("status", Value::UInt(u64::from(status))),
                ("body", body),
            ])
        })
        .collect();
    Response::json(
        200,
        render_value(&obj(vec![("results", Value::Seq(results))])),
    )
}

/// `POST /v1/autopilot/enroll`: arms (or re-arms) the closed loop over
/// the hosted fleet. Idempotent — an enrolled fleet keeps its pilot
/// states and budget ledger; only the configuration is replaced.
fn handle_enroll(shared: &Shared, request: &EnrollRequest) -> Response {
    let mut autopilot = AutopilotConfig::demo();
    if let Some(rate) = request.budget_messages_per_epoch {
        autopilot.budget_messages_per_epoch = rate;
    }
    if let Some(burst) = request.budget_burst {
        autopilot.budget_burst = burst;
    }
    let mut host = shared.fleet.lock().expect("unpoisoned fleet");
    let already_armed = host.sim.config().autopilot.is_some();
    if let Err(e) = host.sim.arm_autopilot(autopilot.clone()) {
        return Response::json(400, error_body(&e.to_string()));
    }
    let enrolled = host.sim.chip_count() as u64;
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("enrolled", Value::UInt(enrolled)),
            ("already_armed", Value::Bool(already_armed)),
            (
                "budget_messages_per_epoch",
                Value::UInt(autopilot.budget_messages_per_epoch),
            ),
            ("budget_burst", Value::UInt(autopilot.budget_burst)),
        ])),
    )
}

/// `GET /v1/autopilot/summary`: the regime census and budget ledger,
/// plus the controller configuration driving them. `404` when the
/// fleet is not enrolled — exactly what the path answered before the
/// autopilot existed, so unenrolled deployments see no change.
fn autopilot_summary_response(shared: &Shared) -> Response {
    use serde::Serialize;
    let host = shared.fleet.lock().expect("unpoisoned fleet");
    let Some(config) = host.sim.config().autopilot.clone() else {
        return Response::json(404, error_body("autopilot not enrolled"));
    };
    let Some(fleet) = host.sim.summary().autopilot else {
        return Response::json(404, error_body("autopilot not enrolled"));
    };
    drop(host);
    Response::json(
        200,
        render_value(&obj(vec![
            ("config", config.to_value()),
            ("fleet", fleet.to_value()),
        ])),
    )
}

fn handle_telemetry(shared: &Shared, request: &TelemetryRequest) -> Response {
    let mut host = shared.fleet.lock().expect("unpoisoned fleet");
    let fleet_size = host.sim.chip_count();
    if request.chip as usize >= fleet_size {
        return Response::json(
            404,
            error_body(&format!(
                "chip {} not in the hosted fleet of {fleet_size}",
                request.chip
            )),
        );
    }
    let current = host.sim.epoch();
    if request.epoch > current + MAX_EPOCH_ADVANCE {
        return Response::json(
            400,
            error_body(&format!(
                "epoch {} is more than {MAX_EPOCH_ADVANCE} ahead of the fleet at {current}",
                request.epoch
            )),
        );
    }
    // Telemetry advances the model-driven fleet to the reported
    // epoch: each step replans exactly the chips that crossed a
    // bucket and journals the events. Reported ΔVth never overwrites
    // the model (the checkpoint must stay kinetics-consistent); it is
    // cross-checked in the response instead.
    while host.sim.epoch() < request.epoch {
        if let Err(e) = host.sim.step() {
            return Response::json(500, error_body(&e.to_string()));
        }
    }
    if let Err(e) = flush_journal(&shared.config, &mut host) {
        return Response::json(500, error_body(&e.to_string()));
    }

    let epoch = host.sim.epoch();
    let chip = host
        .sim
        .chip(request.chip as usize)
        .expect("chip index bounds-checked above");
    #[allow(clippy::cast_precision_loss)]
    let years = epoch as f64 * host.sim.config().epoch_years;
    let model_mv = chip.shift_at(years).millivolts();
    let consistent = request.delta_vth_mv.map(|reported| {
        let bucket_mv = host.sim.config().bucket_mv;
        (reported - model_mv).abs() < bucket_mv
    });
    // The report-vs-model residual feeds two consumers: the exported
    // `agequant_telemetry_residual_mv` gauge, and — when the chip is
    // enrolled — the autopilot's effective-rate estimator, so chips
    // drifting off the calibrated model earn tighter supervision.
    let residual = request.delta_vth_mv.map(|reported| reported - model_mv);
    if let Some(residual) = residual {
        shared.metrics.record_residual(residual);
        host.sim.report_residual(request.chip as usize, residual);
    }
    let pilot = host
        .sim
        .chip(request.chip as usize)
        .and_then(|chip| chip.pilot);
    let mut fields = vec![
        ("chip", Value::UInt(u64::from(chip.id))),
        ("epoch", Value::UInt(epoch)),
        ("stale", Value::Bool(request.epoch < epoch)),
        ("bucket", Value::UInt(chip.bucket)),
        ("mode", Value::Str(mode_label(chip.mode).to_string())),
        ("model_delta_vth_mv", Value::Float(model_mv)),
    ];
    if let Some(consistent) = consistent {
        fields.push(("reported_consistent", Value::Bool(consistent)));
    }
    if let Some(residual) = residual {
        fields.push(("residual_mv", Value::Float(residual)));
    }
    // Cadence hint for enrolled chips: the regime the controller holds
    // the chip in and when it next wants a sample, so well-behaved
    // clients stop polling between scheduled epochs. Unenrolled fleets
    // keep the exact pre-autopilot response bytes.
    if let Some(pilot) = pilot {
        fields.push((
            "autopilot",
            obj(vec![
                ("regime", Value::Str(pilot.regime.name().to_string())),
                ("rate_mv_per_epoch", Value::Float(pilot.rate_mv_per_epoch)),
                ("next_sample_epoch", Value::UInt(pilot.next_epoch)),
            ]),
        ));
    }
    Response::json(200, render_value(&obj(fields)))
}

/// Appends journal events past the flushed cursor to the configured
/// journal file.
fn flush_journal(config: &ServeConfig, host: &mut FleetHost) -> Result<(), ServeError> {
    let Some(path) = &config.journal else {
        return Ok(());
    };
    let events = host.sim.journal();
    if host.flushed >= events.len() {
        return Ok(());
    }
    let text = journal::to_jsonl(&events[host.flushed..]);
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
    file.write_all(text.as_bytes())
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))?;
    host.flushed = events.len();
    Ok(())
}

/// Writes the hosted fleet's checkpoint, for post-run linting.
///
/// A `.bin` path gets the versioned, checksummed binary frame; any
/// other extension gets the legacy JSON form. Either way the write is
/// atomic (temp file + rename), so a crash mid-write cannot destroy a
/// previous checkpoint at the same path.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the file cannot be written.
pub fn write_checkpoint(handle: &ServerHandle, path: &str) -> Result<(), ServeError> {
    let host = handle.shared.fleet.lock().expect("unpoisoned fleet");
    let bytes = if std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "bin")
    {
        // Shard-direct encode: skips materializing a Vec<Chip> of the
        // whole hosted fleet while the fleet lock is held.
        host.sim
            .checkpoint_binary()
            .map_err(|e| ServeError::Io(format!("{path}: {e}")))?
    } else {
        host.sim.to_state().to_json().into_bytes()
    };
    agequant_fleet::persist::atomic_write(std::path::Path::new(path), &bytes)
        .map_err(|e| ServeError::Io(format!("{path}: {e}")))
}

// ---------------------------------------------------------------- responses

fn mode_label(mode: agequant_fleet::ChipMode) -> &'static str {
    match mode {
        agequant_fleet::ChipMode::Compressed => "compressed",
        agequant_fleet::ChipMode::Guardband => "guardband",
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render_value(value: &Value) -> String {
    serde_json::to_string(value).expect("response values are finite")
}

/// An error body as a value tree, for embedding in batch results.
fn error_value(message: &str) -> Value {
    obj(vec![("error", Value::Str(message.to_string()))])
}

/// Serializes an error body.
pub(crate) fn error_body(message: &str) -> String {
    render_value(&error_value(message))
}

/// The `/v1/plan` response for a decision — public so the integration
/// tests build the expected bytes from a direct [`Decider`] call and
/// compare bit-for-bit with what came over the wire.
#[must_use]
pub fn plan_response(decider: &Decider, decision: &Decision) -> Value {
    use serde::Serialize;
    let bucket = decision.bucket();
    let mut fields = vec![
        ("bucket", Value::UInt(bucket)),
        (
            "planned_shift_mv",
            Value::Float(decider.bucket_shift(bucket).millivolts()),
        ),
    ];
    match decision {
        Decision::Plan(plan) => {
            fields.push(("mode", Value::Str("compressed".to_string())));
            fields.push((
                "alpha",
                Value::UInt(u64::from(plan.plan.compression.alpha())),
            ));
            fields.push(("beta", Value::UInt(u64::from(plan.plan.compression.beta()))));
            fields.push(("padding", plan.plan.padding.to_value()));
            fields.push(("method", plan.method.map_or(Value::Null, |m| m.to_value())));
            fields.push((
                "accuracy_loss_pct",
                plan.accuracy_loss_pct.map_or(Value::Null, Value::Float),
            ));
            fields.push((
                "compressed_delay_ps",
                Value::Float(plan.plan.compressed_delay_ps),
            ));
            fields.push(("constraint_ps", Value::Float(plan.plan.constraint_ps)));
        }
        Decision::Degrade { .. } => {
            fields.push(("mode", Value::Str("guardband".to_string())));
            fields.push((
                "guardband_period_ps",
                Value::Float(decider.guardband_period_ps()),
            ));
            fields.push(("constraint_ps", Value::Float(decider.constraint_ps())));
        }
    }
    // Memory-axis projection for the chosen plan: only when the server
    // tracks the memory axis, so memory-off deployments keep the exact
    // pre-memory wire bytes (pinned by the fixture test). The planned
    // weight truncation β selects the stored-bit asymmetry the cells
    // will integrate, so this is where a plan's memory cost shows up.
    if let Some(memory) = decider.memory() {
        let beta = match decision {
            Decision::Plan(plan) => plan.plan.compression.beta(),
            Decision::Degrade { .. } => 0,
        };
        let asymmetry = memory.asymmetry_for_beta(beta);
        fields.push((
            "memory",
            obj(vec![
                ("asymmetry", Value::Float(asymmetry)),
                (
                    "stress_duty",
                    Value::Float(memory.cell.stress_duty(asymmetry)),
                ),
                (
                    "failure_prob_10y",
                    Value::Float(memory.cell.failure_prob(asymmetry, 10.0, 0)),
                ),
                (
                    "failure_prob_10y_reencoded",
                    Value::Float(
                        memory
                            .cell
                            .failure_prob(asymmetry, 10.0, memory.max_reencodes),
                    ),
                ),
            ]),
        ));
    }
    obj(fields)
}
