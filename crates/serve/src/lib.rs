//! `agequant-serve`: a concurrent compression-decision server over
//! the shared evaluation engine.
//!
//! The flow crates answer "given this chip's ΔVth, which `(α, β)`
//! compression, padding, and quantization method keep it at its fresh
//! clock?" as library calls. This crate puts that decision behind a
//! small HTTP/1.1 JSON API so a fleet of NPUs (or a fleet manager)
//! can ask over the network:
//!
//! * `POST /v1/plan` — ΔVth in, decision out, hitting the same plan
//!   cache every other caller warms. An optional `model` field picks a
//!   degradation model from the zoo; omitted, the server's configured
//!   default answers byte-identically to before the field existed.
//! * `GET /v1/models` — the degradation-model zoo: names,
//!   descriptions, the server default, and which models hold a live
//!   decider.
//! * `POST /v1/plan/batch` — a JSON array of plan requests decided in
//!   one round trip; each element answers with the exact bytes its
//!   single call would have produced, errors included.
//! * `POST /v1/telemetry` — per-chip aging samples advance a hosted
//!   [`FleetSim`](agequant_fleet::FleetSim), journaled live. Reported
//!   ΔVth is cross-checked against the model and the residual is fed
//!   to the metrics gauge and (for enrolled chips) the autopilot's
//!   rate estimator; enrolled chips get a cadence hint back.
//! * `POST /v1/autopilot/enroll` — arms the regime-switching closed
//!   loop ([`agequant_autopilot`](agequant_fleet::AutopilotConfig))
//!   over the hosted fleet, with optional budget overrides.
//! * `GET /v1/autopilot/summary` — the regime census and telemetry
//!   budget ledger (`404` until enrolled).
//! * `GET /v1/fleet/summary` — the hosted fleet's plan distribution.
//! * `GET /v1/memory/summary` — the weight-memory aging rollup, when
//!   the hosted fleet tracks the memory axis (`404` otherwise).
//! * `GET /metrics` — Prometheus text: request counts, latency
//!   histograms, queue depth, the engine's cache counters (aggregate,
//!   plus per-degradation-model labelled series), the telemetry
//!   residual EWMA, and the memory/autopilot rollups when those axes
//!   are enabled.
//!
//! The connection plane is a readiness-polled event loop (`poll(2)`
//! via `agequant-netpoll`): every connection — parsing, writes, idle
//! keep-alive sweeping, deadlines, the graceful drain — is owned by
//! one loop thread, so idle connections cost a file descriptor, not a
//! thread. `POST /v1/plan` requests inside the served ΔVth range are
//! answered *on the loop* from an immutable prerendered decision
//! table (an atomically swapped
//! [`DecisionTable`](agequant_fleet::DecisionTable)-backed plan set
//! whose publish protocol is model-checked): no lock, no queue, no
//! engine, byte-identical to the live path. Everything else goes to a
//! bounded-queue worker pool built on the `agequant-check` facade
//! over `std`, so the queue/drain protocol is model-checked under
//! `--features model`: a full queue answers `503 Retry-After`
//! immediately — backpressure is explicit, memory stays flat under
//! overload — and every request carries a deadline. Shutdown
//! (`POST /v1/shutdown`) drains the queue before the workers exit, so
//! accepted work is never dropped.
//!
//! # Example
//!
//! ```
//! use agequant_fleet::FleetConfig;
//! use agequant_serve::{start, ServeConfig};
//!
//! # fn main() -> Result<(), agequant_serve::ServeError> {
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     fleet_chips: 4,
//!     ..ServeConfig::default()
//! };
//! let handle = start(config, FleetConfig::new(4, 7))?;
//! let addr = handle.addr(); // POST http://{addr}/v1/plan ...
//! # let _ = addr;
//! handle.shutdown_and_join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event_loop;
mod http;
mod metrics;
mod queue;
mod server;

use std::fmt;

use agequant_fleet::FleetError;

pub use config::{sweep_max_mv, ServeConfig};
pub use http::{
    eof_error, reason, try_parse, HttpError, Parsed, Request, Response, CONTINUE_BYTES,
    MAX_BODY_BYTES,
};
pub use metrics::{Endpoint, Metrics, LATENCY_BUCKETS_S};
pub use queue::BoundedQueue;
pub use server::{plan_response, start, write_checkpoint, ServerHandle};

/// Everything that can go wrong starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration is invalid (the message names each violation).
    Config(String),
    /// A socket or file operation failed.
    Io(String),
    /// The decision core could not be built or a decision failed.
    Fleet(FleetError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid server config: {msg}"),
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::Fleet(e) => write!(f, "fleet error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FleetError> for ServeError {
    fn from(e: FleetError) -> Self {
        ServeError::Fleet(e)
    }
}
