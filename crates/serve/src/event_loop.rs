//! The readiness-polled connection plane.
//!
//! One event-loop thread (more with `AGEQUANT_SERVE_LOOPS`) owns every
//! connection: a single `poll(2)` interest set covers the listener, a
//! cross-thread waker, and each connection socket, so ten thousand
//! idle keep-alive clients cost one file descriptor of kernel state
//! apiece and no thread stacks. Request parsing, the wire-speed
//! decision-table path, deadline bookkeeping, idle sweeping, and the
//! graceful drain all happen here, centrally, instead of being
//! replicated across per-connection threads.
//!
//! Requests the table cannot answer are queued to the worker pool; the
//! worker posts a [`Completion`] into the owning loop's inbox (keyed
//! by a generation-checked [`Token`]) and kicks the waker, so every
//! byte a connection ever sends or receives is handled by the one
//! thread that owns it — connection state needs no lock.
//!
//! Pipelined requests are first-class: after a completion or a
//! loop-side `504`, the parser is re-run over the receive buffer,
//! because bytes that already arrived will never raise another
//! readability event.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use agequant_check::sync::atomic::Ordering;
use agequant_check::sync::{Arc, Mutex};
use agequant_check::thread;
use agequant_fleet::SwapReader;
use agequant_netpoll::{poll, PollFd, POLLIN, POLLOUT};

use crate::http::{self, HttpError, Parsed, Response};
use crate::metrics::Endpoint;
use crate::server::{self, PlanSet, Routed, Shared};

/// Grace past a request's deadline before the loop answers `504`
/// itself (the worker's own expired-pop answer usually lands first).
const DEADLINE_GRACE: Duration = Duration::from_millis(250);
/// How often the deadline and idle sweeps run.
const SWEEP_EVERY: Duration = Duration::from_millis(50);
/// Poll timeout, bounding sweep latency while the loop is idle.
const POLL_TICK_MS: i32 = 100;
/// How long a draining loop waits for in-flight work and final
/// flushes before force-closing whatever remains.
const DRAIN_PATIENCE: Duration = Duration::from_secs(10);
/// Bytes per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Addresses one parked request across the loop/worker boundary.
///
/// The generation retires stale completions: a connection that was
/// closed, reused, or answered `504` by the deadline sweep bumps its
/// generation, so a late worker reply is dropped instead of being
/// written onto someone else's request.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Token {
    pub(crate) loop_idx: usize,
    pub(crate) slot: usize,
    pub(crate) gen: u64,
}

/// A worker's finished reply, addressed by token.
pub(crate) struct Completion {
    pub(crate) token: Token,
    pub(crate) response: Response,
}

/// What other threads push at an event loop.
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The cross-thread face of one event loop: an inbox plus a waker
/// socket whose write end any thread may kick to interrupt `poll`.
pub(crate) struct LoopShared {
    inbox: Mutex<Inbox>,
    waker_tx: TcpStream,
}

impl LoopShared {
    pub(crate) fn new(waker_tx: TcpStream) -> Self {
        LoopShared {
            inbox: Mutex::new(Inbox {
                conns: Vec::new(),
                completions: Vec::new(),
            }),
            waker_tx,
        }
    }

    /// Interrupts the loop's current `poll`. Best-effort: a full waker
    /// pipe already guarantees a pending wakeup.
    pub(crate) fn wake(&self) {
        let _ = (&self.waker_tx).write(&[1]);
    }

    /// Posts a finished reply; follow with [`LoopShared::wake`].
    pub(crate) fn deliver(&self, completion: Completion) {
        self.inbox
            .lock()
            .expect("unpoisoned inbox")
            .completions
            .push(completion);
    }

    /// Hands an accepted connection to this loop.
    fn hand_off(&self, stream: TcpStream) {
        self.inbox
            .lock()
            .expect("unpoisoned inbox")
            .conns
            .push(stream);
    }
}

/// Builds the `(read, write)` waker pair: a self-connected TCP socket,
/// the only readiness-pollable self-pipe `std` can make without more
/// FFI than the poll shim itself.
pub(crate) fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

/// A request waiting on the worker pool.
struct Pending {
    endpoint: Endpoint,
    started: Instant,
    deadline: Instant,
    wants_close: bool,
}

/// Per-connection state, owned by exactly one loop thread.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    /// Bytes of `inbuf` consumed by parsed requests; compacted once
    /// per wake rather than once per pipelined request.
    inpos: usize,
    outbuf: Vec<u8>,
    written: usize,
    last_activity: Instant,
    gen: u64,
    pending: Option<Pending>,
    close_after_flush: bool,
    continue_sent: bool,
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            inpos: 0,
            outbuf: Vec::new(),
            written: 0,
            last_activity: Instant::now(),
            gen,
            pending: None,
            close_after_flush: false,
            continue_sent: false,
            eof: false,
        }
    }

    fn unflushed(&self) -> bool {
        self.written < self.outbuf.len()
    }

    /// More request bytes are welcome: nothing parked, not closing,
    /// and the peer has not hung up its sending half.
    fn can_read(&self) -> bool {
        self.pending.is_none() && !self.close_after_flush && !self.eof
    }
}

/// What a poll-set entry refers to this iteration.
enum FdKind {
    Waker,
    Listener,
    Conn(usize),
}

/// Runs one event loop until the drain completes. Loop 0 owns the
/// listener and round-robins accepted connections across all loops.
pub(crate) fn run(
    shared: Arc<Shared>,
    idx: usize,
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
) {
    EventLoop {
        plans: shared.plans_reader(),
        shared,
        idx,
        listener,
        waker_rx,
        conns: Vec::new(),
        free: Vec::new(),
        live: 0,
        next_gen: 1,
        next_sweep: Instant::now(),
        drain_deadline: None,
    }
    .run();
}

struct EventLoop {
    shared: Arc<Shared>,
    idx: usize,
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
    /// This loop's lock-free view of the prerendered plan tables.
    plans: SwapReader<PlanSet>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
    next_sweep: Instant,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut kinds: Vec<FdKind> = Vec::new();
        loop {
            if self.shared.is_draining() {
                // Stop accepting the moment the drain starts; dropping
                // the listener closes the port, so post-drain connects
                // are refused at the kernel.
                self.listener = None;
                if self.drain_deadline.is_none() {
                    self.drain_deadline = Some(Instant::now() + DRAIN_PATIENCE);
                }
            }
            self.drain_inbox();
            self.sweep();
            if self.shared.is_draining() && self.live == 0 {
                break;
            }

            fds.clear();
            kinds.clear();
            fds.push(PollFd::readable(fd_of(&self.waker_rx)));
            kinds.push(FdKind::Waker);
            if let Some(listener) = &self.listener {
                fds.push(PollFd::readable(fd_of(listener)));
                kinds.push(FdKind::Listener);
            }
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0;
                if conn.can_read() {
                    events |= POLLIN;
                }
                if conn.unflushed() {
                    events |= POLLOUT;
                }
                if events == 0 {
                    // Parked on a worker reply with nothing to write:
                    // leaving it out of the set keeps a hung-up peer
                    // from spinning the loop on POLLHUP.
                    continue;
                }
                fds.push(PollFd::new(fd_of(&conn.stream), events));
                kinds.push(FdKind::Conn(slot));
            }

            if poll(&mut fds, POLL_TICK_MS).is_err() {
                // Non-EINTR failure (or a non-unix build): back off
                // instead of spinning; sweeps still run every pass.
                thread::sleep(Duration::from_millis(5));
            }

            for (fd, kind) in fds.iter().zip(&kinds) {
                match kind {
                    FdKind::Waker => {
                        if fd.is_readable() {
                            drain_waker(&self.waker_rx);
                        }
                    }
                    FdKind::Listener => {
                        if fd.is_readable() {
                            self.accept_ready();
                        }
                    }
                    FdKind::Conn(slot) => {
                        self.service(*slot, fd.is_readable(), fd.is_writable(), fd.is_error());
                    }
                }
            }
        }
        // The drain is over (or patience ran out): whatever is left
        // closes without ceremony.
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
    }

    /// Handles one connection's readiness report.
    fn service(&mut self, slot: usize, readable: bool, writable: bool, error: bool) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return;
        }
        if readable && self.conns[slot].as_ref().expect("live slot").can_read() {
            if self.fill(slot) {
                self.advance(slot);
            } else {
                self.close(slot);
                return;
            }
        }
        if self.conns[slot].is_none() {
            return;
        }
        if writable || self.conns[slot].as_ref().expect("live slot").unflushed() {
            self.flush(slot);
        }
        if self.conns[slot].is_none() {
            return;
        }
        // POLLERR/POLLNVAL with no forward progress: the socket is
        // dead. (POLLHUP alone arrives with `readable` set and is
        // handled as EOF by the read path.)
        if error && !readable && !writable {
            self.close(slot);
        }
    }

    /// Reads everything available into the receive buffer. `false`
    /// means the socket errored and the connection should close.
    fn fill(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("live slot");
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    return true;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    conn.last_activity = Instant::now();
                    if n < buf.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Parses and dispatches every complete request buffered on the
    /// connection, stopping at a partial request, a parked job, or a
    /// close-worthy condition. Re-run after completions: buffered
    /// pipelined bytes never raise another readability event.
    fn advance(&mut self, slot: usize) {
        loop {
            let (request, token) = {
                let conn = self.conns[slot].as_mut().expect("live slot");
                if conn.pending.is_some() || conn.close_after_flush {
                    break;
                }
                match http::try_parse(&conn.inbuf[conn.inpos..]) {
                    Err(err) => {
                        let (status, message) = match err {
                            HttpError::TooLarge(limit) => (413, format!("limit {limit} bytes")),
                            HttpError::Malformed(msg) | HttpError::Io(msg) => (400, msg),
                        };
                        answer_and_close(conn, &self.shared, status, &message);
                        break;
                    }
                    Ok(Parsed::Partial { needs_continue }) => {
                        if conn.eof {
                            // The peer finished sending mid-request:
                            // same 400-or-silent-close split the old
                            // blocking wire layer drew.
                            match http::eof_error(&conn.inbuf[conn.inpos..]) {
                                Some(HttpError::Malformed(msg)) => {
                                    answer_and_close(conn, &self.shared, 400, &msg);
                                }
                                Some(HttpError::TooLarge(limit)) => {
                                    answer_and_close(
                                        conn,
                                        &self.shared,
                                        413,
                                        &format!("limit {limit} bytes"),
                                    );
                                }
                                Some(HttpError::Io(_)) | None => conn.close_after_flush = true,
                            }
                        } else if needs_continue && !conn.continue_sent {
                            conn.outbuf.extend_from_slice(http::CONTINUE_BYTES);
                            conn.continue_sent = true;
                        }
                        break;
                    }
                    Ok(Parsed::Complete { request, consumed }) => {
                        conn.inpos += consumed;
                        conn.continue_sent = false;
                        conn.last_activity = Instant::now();
                        let token = Token {
                            loop_idx: self.idx,
                            slot,
                            gen: conn.gen,
                        };
                        (request, token)
                    }
                }
            };
            let started = Instant::now();
            let (endpoint, routed) = server::route(&self.shared, &request, token, &mut self.plans);
            let conn = self.conns[slot].as_mut().expect("live slot");
            match routed {
                Routed::Ready(reply) => {
                    let keep_alive = !self.shared.is_draining() && !request.wants_close();
                    let status = reply.status();
                    reply.render(&mut conn.outbuf, keep_alive);
                    self.shared
                        .metrics
                        .observe(endpoint, status, started.elapsed());
                    if !keep_alive {
                        conn.close_after_flush = true;
                    }
                }
                Routed::Pending => {
                    conn.pending = Some(Pending {
                        endpoint,
                        started,
                        deadline: started + Duration::from_millis(self.shared.config.deadline_ms),
                        wants_close: request.wants_close(),
                    });
                }
            }
        }
        let conn = self.conns[slot].as_mut().expect("live slot");
        if conn.inpos > 0 {
            conn.inbuf.drain(..conn.inpos);
            conn.inpos = 0;
        }
    }

    /// Writes as much of the send buffer as the socket accepts,
    /// closing the connection once a close-marked buffer drains.
    fn flush(&mut self, slot: usize) {
        let (dead, done) = {
            let conn = self.conns[slot].as_mut().expect("live slot");
            let mut dead = false;
            while conn.written < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.written = 0;
            }
            (dead, conn.outbuf.is_empty() && conn.close_after_flush)
        };
        if dead || done {
            self.close(slot);
        }
    }

    /// Accepts every pending connection, round-robining across loops.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.shared.metrics.connection_opened();
                    let loops = self.shared.loops.len();
                    let target = if loops > 1 {
                        self.shared.next_loop.fetch_add(1, Ordering::Relaxed) % loops
                    } else {
                        self.idx
                    };
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        self.shared.loops[target].hand_off(stream);
                        self.shared.loops[target].wake();
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock or transient; poll retries
            }
        }
    }

    /// Takes ownership of a connection and serves whatever already
    /// arrived without waiting for the next poll round.
    fn adopt(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = Conn::new(stream, gen);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.live += 1;
        if self.fill(slot) {
            self.advance(slot);
            self.flush(slot);
        } else {
            self.close(slot);
        }
    }

    /// Pulls handed-off connections and worker completions.
    fn drain_inbox(&mut self) {
        let (streams, completions) = {
            let mut inbox = self.shared.loops[self.idx]
                .inbox
                .lock()
                .expect("unpoisoned inbox");
            if inbox.conns.is_empty() && inbox.completions.is_empty() {
                return;
            }
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
            )
        };
        for stream in streams {
            self.adopt(stream);
        }
        for completion in completions {
            self.complete(completion);
        }
    }

    /// Writes a worker's reply onto its connection, unless the token
    /// was retired (connection closed/reused or already answered 504).
    fn complete(&mut self, completion: Completion) {
        let Token { slot, gen, .. } = completion.token;
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        let Some(pending) = conn.pending.take() else {
            return;
        };
        let keep_alive = !self.shared.is_draining() && !pending.wants_close;
        completion.response.render_to(&mut conn.outbuf, keep_alive);
        self.shared.metrics.observe(
            pending.endpoint,
            completion.response.status,
            pending.started.elapsed(),
        );
        conn.last_activity = Instant::now();
        if !keep_alive {
            conn.close_after_flush = true;
        }
        self.advance(slot);
        self.flush(slot);
    }

    /// The central deadline and idle sweeps, rate-limited so ten
    /// thousand idle connections cost one scan per [`SWEEP_EVERY`],
    /// not one timer apiece.
    fn sweep(&mut self) {
        let now = Instant::now();
        if now < self.next_sweep {
            return;
        }
        self.next_sweep = now + SWEEP_EVERY;
        let draining = self.shared.is_draining();
        let idle_limit = Duration::from_secs(self.shared.config.keep_alive_secs.max(1));
        let patience_up = self.drain_deadline.is_some_and(|d| now >= d);
        for slot in 0..self.conns.len() {
            enum Action {
                Keep,
                Expire,
                Close,
            }
            let action = {
                let Some(conn) = &self.conns[slot] else {
                    continue;
                };
                if patience_up {
                    Action::Close
                } else if conn
                    .pending
                    .as_ref()
                    .is_some_and(|p| now >= p.deadline + DEADLINE_GRACE)
                {
                    Action::Expire
                } else if conn.pending.is_none()
                    && !conn.unflushed()
                    && (draining || now.duration_since(conn.last_activity) > idle_limit)
                {
                    Action::Close
                } else {
                    Action::Keep
                }
            };
            match action {
                Action::Keep => {}
                Action::Close => self.close(slot),
                Action::Expire => self.expire(slot),
            }
        }
    }

    /// The loop-side deadline answer: the worker never picked the job
    /// up (or is still on it); the client gets `504` now, and the
    /// eventual completion is retired by the generation bump.
    fn expire(&mut self, slot: usize) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = self.conns[slot].as_mut().expect("live slot");
        let Some(pending) = conn.pending.take() else {
            return;
        };
        conn.gen = gen;
        self.shared.metrics.record_timeout();
        let keep_alive = !self.shared.is_draining() && !pending.wants_close;
        let response = Response::json(504, server::error_body("deadline exceeded"));
        response.render_to(&mut conn.outbuf, keep_alive);
        self.shared
            .metrics
            .observe(pending.endpoint, 504, pending.started.elapsed());
        if !keep_alive {
            conn.close_after_flush = true;
        }
        self.advance(slot);
        self.flush(slot);
    }

    fn close(&mut self, slot: usize) {
        if let Some(entry @ Some(_)) = self.conns.get_mut(slot) {
            *entry = None;
            self.free.push(slot);
            self.live -= 1;
            self.shared.metrics.connection_closed();
        }
    }
}

/// Renders an error response, counts it, and marks the connection to
/// close once it flushes — the wire behavior of the old blocking
/// layer's 400/413 path.
fn answer_and_close(conn: &mut Conn, shared: &Shared, status: u16, message: &str) {
    let response = Response::json(status, server::error_body(message));
    shared
        .metrics
        .observe(Endpoint::Other, status, Duration::ZERO);
    response.render_to(&mut conn.outbuf, false);
    conn.close_after_flush = true;
}

/// Empties the waker socket so its readability resets.
fn drain_waker(mut waker_rx: &TcpStream) {
    let mut buf = [0u8; 64];
    loop {
        match waker_rx.read(&mut buf) {
            Ok(0) => return, // write end gone: the server is exiting
            Ok(_) => {}
            Err(_) => return, // WouldBlock: drained
        }
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

/// Non-unix builds compile but cannot poll; `poll` returns
/// `Unsupported` and the loop degrades to its backoff sleep.
#[cfg(not(unix))]
fn fd_of<T>(_io: &T) -> i32 {
    -1
}
