//! Instrumented `std::thread` lookalikes.
//!
//! Threads spawned from a model thread become model threads (real OS
//! threads whose scheduling the checker controls); spawns from outside
//! an execution behave exactly like `std`. `sleep` and `yield_now`
//! are plain yield points — the model has no clock.

use std::io;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::Duration;

use crate::model::runtime::{current, Execution, Tid};

/// A model-aware `std::thread::Builder`.
pub struct Builder {
    inner: std::thread::Builder,
    name: String,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Builder {
        Builder {
            inner: std::thread::Builder::new(),
            name: "<unnamed>".to_string(),
        }
    }

    /// Names the thread (shown in model traces).
    pub fn name(mut self, name: String) -> Builder {
        self.name.clone_from(&name);
        self.inner = self.inner.name(name);
        self
    }

    /// Spawns the thread; from a model thread the child joins the
    /// execution and is scheduled by the checker.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_impl(self.inner, self.name, f)
    }
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

fn spawn_impl<F, T>(builder: std::thread::Builder, name: String, f: F) -> io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some(ctx) => {
            let tid = ctx.exec.spawn_child(ctx.tid, name);
            let exec = Arc::clone(&ctx.exec);
            let exec2 = Arc::clone(&exec);
            let inner = builder.spawn(move || exec2.thread_main(tid, f))?;
            Ok(JoinHandle {
                model: Some((exec, tid)),
                inner,
            })
        }
        None => {
            let inner = builder.spawn(move || Some(f()))?;
            Ok(JoinHandle { model: None, inner })
        }
    }
}

/// Spawns a thread (model-scheduled when called from a model thread).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_impl(std::thread::Builder::new(), "<spawned>".to_string(), f)
        .expect("failed to spawn thread")
}

/// A model-aware `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    model: Option<(Arc<Execution>, Tid)>,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a model yield point).
    pub fn join(self) -> std::thread::Result<T> {
        model_join(&self.model);
        self.inner
            .join()
            .map(|v| v.expect("a joinable model thread has finished"))
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

fn model_join(model: &Option<(Arc<Execution>, Tid)>) {
    if let Some((exec, target)) = model {
        if let Some(ctx) = current() {
            if Arc::ptr_eq(&ctx.exec, exec) {
                exec.join(ctx.tid, *target);
            }
        }
    }
}

/// A model-aware scoped-spawn handle.
pub struct ScopedJoinHandle<'scope, T> {
    model: Option<(Arc<Execution>, Tid)>,
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish (a model yield point).
    pub fn join(self) -> std::thread::Result<T> {
        model_join(&self.model);
        self.inner
            .join()
            .map(|v| v.expect("a joinable model thread has finished"))
    }
}

/// A model-aware `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    exec: Option<Arc<Execution>>,
    /// Children to model-join at scope exit (re-joining an already
    /// joined thread is a fast no-op).
    children: std::sync::Mutex<Vec<Tid>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread (model-scheduled when inside a model
    /// execution).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.exec {
            Some(exec) => {
                let parent = current()
                    .expect("scoped spawn inside a model scope must run on a model thread")
                    .tid;
                let tid = exec.spawn_child(parent, "<scoped>".to_string());
                let exec2 = Arc::clone(exec);
                let inner = self.inner.spawn(move || exec2.thread_main(tid, f));
                self.children
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(tid);
                ScopedJoinHandle {
                    model: Some((Arc::clone(exec), tid)),
                    inner,
                }
            }
            None => ScopedJoinHandle {
                model: None,
                inner: self.inner.spawn(move || Some(f())),
            },
        }
    }
}

/// A model-aware `std::thread::scope`: at scope exit every spawned
/// child is model-joined (so the real scope's implicit join never
/// blocks a thread the scheduler believes is runnable).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = current();
    std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            exec: ctx.as_ref().map(|c| Arc::clone(&c.exec)),
            children: std::sync::Mutex::new(Vec::new()),
        };
        let out = f(&wrapper);
        if let Some(c) = &ctx {
            let children = std::mem::take(
                &mut *wrapper
                    .children
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            for tid in children {
                c.exec.join(c.tid, tid);
            }
        }
        out
    })
}

/// Sleeps; in the model a plain yield point (the model has no clock).
pub fn sleep(dur: Duration) {
    if let Some(ctx) = current() {
        ctx.exec.pause(ctx.tid);
        return;
    }
    std::thread::sleep(dur);
}

/// Yields; in the model a plain yield point.
pub fn yield_now() {
    if let Some(ctx) = current() {
        ctx.exec.pause(ctx.tid);
        return;
    }
    std::thread::yield_now();
}

/// Reports a fixed parallelism of 2 inside the model (keeps modeled
/// protocols small); defers to `std` otherwise.
pub fn available_parallelism() -> io::Result<NonZeroUsize> {
    if current().is_some() {
        return Ok(NonZeroUsize::new(2).expect("2 is nonzero"));
    }
    std::thread::available_parallelism()
}
