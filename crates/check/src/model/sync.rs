//! Instrumented `std::sync` lookalikes.
//!
//! Each type wraps the real primitive *plus* an optional link to the
//! model execution it was created under. Model threads yield to the
//! scheduler before every visible operation; threads without a model
//! context (e.g. vendored-rayon workers) skip the scheduler and use
//! the real primitive directly, so mutual exclusion stays sound for
//! hybrid workloads.
//!
//! `Arc` and `mpsc` pass through un-modeled: they are value plumbing,
//! not scheduling points, in every protocol this workspace models.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub use std::sync::{mpsc, Arc, LockResult, PoisonError, Weak};

use crate::model::runtime::{active, register_object, AcqKind, ModelRef, ObjKind};

fn unpoison<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A model-aware `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    model: Option<ModelRef>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex; registers it with the current model
    /// execution when constructed on a model thread.
    pub fn new(value: T) -> Self {
        Mutex {
            model: register_object(ObjKind::Mutex),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. On a model thread this is a yield point; the
    /// scheduler grants the lock in the explored order.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(m) = &self.model {
            if let Some(me) = active(m) {
                m.exec.acquire(me, m.id, AcqKind::Lock);
                // The model owns the lock; the real lock is contended
                // only by hybrid threads, which always release.
                let inner = unpoison(self.inner.lock());
                return Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    registered: true,
                });
            }
        }
        let inner = unpoison(self.inner.lock());
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            registered: false,
        })
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releases the model lock (silently) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Whether this guard holds the *model* lock (acquired by a model
    /// thread through the scheduler).
    registered: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.registered {
            if let Some(m) = &self.lock.model {
                if let Some(me) = active(m) {
                    m.exec.release(me, m.id, AcqKind::Lock);
                }
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A model-aware `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    model: Option<ModelRef>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock; registers it with the current model execution
    /// when constructed on a model thread.
    pub fn new(value: T) -> Self {
        RwLock {
            model: register_object(ObjKind::RwLock),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (a model yield point).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(m) = &self.model {
            if let Some(me) = active(m) {
                m.exec.acquire(me, m.id, AcqKind::Read);
                let inner = unpoison(self.inner.read());
                return Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    registered: true,
                });
            }
        }
        let inner = unpoison(self.inner.read());
        Ok(RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            registered: false,
        })
    }

    /// Acquires exclusive write access (a model yield point).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(m) = &self.model {
            if let Some(me) = active(m) {
                m.exec.acquire(me, m.id, AcqKind::Write);
                let inner = unpoison(self.inner.write());
                return Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    registered: true,
                });
            }
        }
        let inner = unpoison(self.inner.write());
        Ok(RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            registered: false,
        })
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    registered: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.registered {
            if let Some(m) = &self.lock.model {
                if let Some(me) = active(m) {
                    m.exec.release(me, m.id, AcqKind::Read);
                }
            }
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    registered: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.registered {
            if let Some(m) = &self.lock.model {
                if let Some(me) = active(m) {
                    m.exec.release(me, m.id, AcqKind::Write);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a [`Condvar::wait_timeout`] (our own type: `std`'s has no
/// public constructor).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A model-aware `std::sync::Condvar`.
///
/// Modeled waits park in the scheduler (wait enqueue and notify are
/// yield points); modeled timed waits may "time out" a bounded number
/// of times per thread per execution, which is how the checker
/// explores the timeout/spurious-wakeup arm of a `wait_timeout` loop.
pub struct Condvar {
    model: Option<ModelRef>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condvar; registers it with the current model
    /// execution when constructed on a model thread.
    pub fn new() -> Self {
        Condvar {
            model: register_object(ObjKind::Condvar),
            inner: std::sync::Condvar::new(),
        }
    }

    fn model_wait<'a, T: ?Sized>(
        &self,
        m: &ModelRef,
        me: usize,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock_ref = guard.lock;
        let mutex = lock_ref
            .model
            .as_ref()
            .expect("modeled Condvar waited with an unmodeled Mutex")
            .id;
        // Drop the real guard without a model release: the scheduler
        // releases the model lock atomically with the wait enqueue.
        guard.registered = false;
        guard.inner = None;
        drop(guard);
        let timed_out = m.exec.cond_wait(me, m.id, mutex, timed);
        // The scheduler granted us the model lock back; retake the
        // real one.
        let inner = unpoison(lock_ref.inner.lock());
        (
            MutexGuard {
                lock: lock_ref,
                inner: Some(inner),
                registered: true,
            },
            timed_out,
        )
    }

    /// Blocks until notified (a model yield point).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.registered {
            let m = self
                .model
                .as_ref()
                .expect("modeled MutexGuard waited on an unmodeled Condvar");
            let me = active(m).expect("registered guard implies a model thread");
            let (guard, _) = self.model_wait(m, me, guard, false);
            return Ok(guard);
        }
        let lock_ref = guard.lock;
        let mut moved = guard;
        let inner = moved.inner.take().expect("guard holds the lock");
        drop(moved);
        let inner = unpoison(self.inner.wait(inner));
        Ok(MutexGuard {
            lock: lock_ref,
            inner: Some(inner),
            registered: false,
        })
    }

    /// Blocks until notified or the timeout elapses (a model yield
    /// point; in the model the duration is abstract and the timeout
    /// arm is explored as a scheduling choice).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.registered {
            let m = self
                .model
                .as_ref()
                .expect("modeled MutexGuard waited on an unmodeled Condvar");
            let me = active(m).expect("registered guard implies a model thread");
            let (guard, timed_out) = self.model_wait(m, me, guard, true);
            return Ok((guard, WaitTimeoutResult { timed_out }));
        }
        let lock_ref = guard.lock;
        let mut moved = guard;
        let inner = moved.inner.take().expect("guard holds the lock");
        drop(moved);
        let (inner, result) = unpoison(self.inner.wait_timeout(inner, dur));
        Ok((
            MutexGuard {
                lock: lock_ref,
                inner: Some(inner),
                registered: false,
            },
            WaitTimeoutResult {
                timed_out: result.timed_out(),
            },
        ))
    }

    /// Wakes one waiter (a model yield point; FIFO in the model).
    pub fn notify_one(&self) {
        if let Some(m) = &self.model {
            if let Some(me) = active(m) {
                m.exec.notify(me, m.id, false);
                // Hybrid threads may wait on the real condvar; wake
                // them all (spurious wakeups are legal).
                self.inner.notify_all();
                return;
            }
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter (a model yield point).
    pub fn notify_all(&self) {
        if let Some(m) = &self.model {
            if let Some(me) = active(m) {
                m.exec.notify(me, m.id, true);
            }
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Model-aware atomics: every operation is a yield point on model
/// threads; the value itself lives in the real `std` atomic, so the
/// result of each (sequentially granted) operation is exact.
pub mod atomic {
    use std::fmt;

    pub use std::sync::atomic::Ordering;

    use crate::model::runtime::{active, register_object, ModelRef, ObjKind};

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty, $zero:expr, ints: $ints:tt) => {
            $(#[$doc])*
            pub struct $name {
                model: Option<ModelRef>,
                inner: $std,
            }

            impl $name {
                /// Creates the atomic; registers it with the current
                /// model execution when constructed on a model thread.
                pub fn new(value: $prim) -> Self {
                    $name {
                        model: register_object(ObjKind::Atomic),
                        inner: <$std>::new(value),
                    }
                }

                fn hit(&self, write: bool) {
                    if let Some(m) = &self.model {
                        if let Some(me) = active(m) {
                            m.exec.atomic(me, m.id, write);
                        }
                    }
                }

                /// Loads the value (a model yield point).
                pub fn load(&self, order: Ordering) -> $prim {
                    self.hit(false);
                    self.inner.load(order)
                }

                /// Stores a value (a model yield point).
                pub fn store(&self, value: $prim, order: Ordering) {
                    self.hit(true);
                    self.inner.store(value, order);
                }

                /// Swaps the value (a model yield point).
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.hit(true);
                    self.inner.swap(value, order)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                model_atomic!(@ints $ints, $prim);
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new($zero)
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
        (@ints yes, $prim:ty) => {
            /// Adds, returning the previous value (a model yield point).
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.hit(true);
                self.inner.fetch_add(value, order)
            }

            /// Subtracts, returning the previous value (a model yield
            /// point).
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.hit(true);
                self.inner.fetch_sub(value, order)
            }

            /// Maximum, returning the previous value (a model yield
            /// point).
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                self.hit(true);
                self.inner.fetch_max(value, order)
            }

            /// Weak compare-and-exchange (a model yield point). Like
            /// the `std` form: `Ok(previous)` when the exchange
            /// happened, `Err(actual)` when it did not (including
            /// spurious failures the caller's loop must absorb).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.hit(true);
                self.inner.compare_exchange_weak(current, new, success, failure)
            }
        };
        (@ints no, $prim:ty) => {};
    }

    model_atomic!(
        /// Model-aware `AtomicBool`.
        AtomicBool, std::sync::atomic::AtomicBool, bool, false, ints: no
    );
    model_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, std::sync::atomic::AtomicUsize, usize, 0, ints: yes
    );
    model_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64, std::sync::atomic::AtomicU64, u64, 0, ints: yes
    );
}
