//! Depth-first schedule enumeration with sleep sets and a preemption
//! bound.
//!
//! Each run executes the user closure under a replayed decision prefix
//! and records every fresh multi-way decision as a frame. Backtracking
//! picks the deepest frame with an untried, awake, bound-feasible
//! sibling, and reruns with that sibling forced — carrying the frame's
//! sleep set (explored siblings stay asleep until a dependent
//! transition wakes them, so commuting interleavings are visited once).

use std::sync::Arc;
use std::sync::OnceLock;

use crate::model::runtime::{Bounds, Execution, NewFrame, Tid, Violation};

/// Exploration bounds and budgets.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Stop after this many executed schedules even if unexhausted.
    pub max_schedules: usize,
    /// CHESS-style bound: schedules may switch away from a runnable
    /// thread at most this many times.
    pub max_preemptions: usize,
    /// Per-run step budget; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// How many times each thread's *timed* condvar waits may time out
    /// per execution (models spurious wakeups / timeouts boundedly).
    pub max_timeout_wakeups: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 4096,
            max_preemptions: 2,
            max_steps: 50_000,
            max_timeout_wakeups: 1,
        }
    }
}

/// What an exploration covered.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// Executed schedules that became redundant mid-run (every
    /// alternative asleep or over the preemption bound).
    pub redundant: usize,
    /// Whether the bounded space was fully enumerated (as opposed to
    /// stopping at `max_schedules`).
    pub exhausted: bool,
    /// Deepest decision stack reached.
    pub max_depth: usize,
}

/// One decision point on the DFS stack.
struct Frame {
    enabled: Vec<Tid>,
    sleep: std::collections::BTreeSet<Tid>,
    tried: Vec<Tid>,
    last_running: Option<Tid>,
    preemptions: usize,
}

struct RunOutcome {
    schedule: Vec<Tid>,
    new_frames: Vec<NewFrame>,
    pruned_from: Option<usize>,
    violation: Option<Violation>,
}

/// Suppresses the default "thread panicked at ..." stderr noise for
/// panics inside model threads (they become [`Violation`]s); panics on
/// non-model threads keep the previous hook's behavior.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::model::runtime::current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn run_once<F>(bounds: Bounds, replay: Vec<Tid>, pending_sleep: Vec<Tid>, f: &Arc<F>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Execution::new(bounds, replay, pending_sleep);
    let tid0 = exec.register_thread("main".to_string(), true);
    debug_assert_eq!(tid0, 0);
    let exec2 = Arc::clone(&exec);
    let f2 = Arc::clone(f);
    let handle = std::thread::Builder::new()
        .name("agequant-model-main".to_string())
        .spawn(move || {
            exec2.thread_main(tid0, move || f2());
        })
        .expect("spawn model main thread");
    exec.wait_outcome();
    let completed = exec.with_state(|st| st.completed);
    if completed {
        let _ = handle.join();
    } else {
        // Violation: parked model threads are abandoned (leaked) by
        // design — we cannot unwind stacks we don't own.
        drop(handle);
    }
    exec.with_state(|st| RunOutcome {
        schedule: std::mem::take(&mut st.schedule),
        new_frames: std::mem::take(&mut st.new_frames),
        pruned_from: st.pruned_from,
        violation: st.violation.clone(),
    })
}

/// The deepest frame with an untried, awake, preemption-feasible
/// sibling, and that sibling.
fn next_backtrack(stack: &[Frame], max_preemptions: usize) -> Option<(usize, Tid)> {
    for depth in (0..stack.len()).rev() {
        let fr = &stack[depth];
        for &t in &fr.enabled {
            if fr.tried.contains(&t) || fr.sleep.contains(&t) {
                continue;
            }
            if let Some(lr) = fr.last_running {
                if fr.enabled.contains(&lr) && t != lr && fr.preemptions >= max_preemptions {
                    continue;
                }
            }
            return Some((depth, t));
        }
    }
    None
}

/// Explores bounded interleavings of `f`; returns the coverage report,
/// or the first [`Violation`] found.
///
/// `f` runs once per schedule and must be deterministic apart from
/// scheduling (same locks, same threads, same asserts given the same
/// interleaving). Terminal invariants are plain `assert!`s at the end
/// of `f` — every spawned-and-joined thread has finished by then.
pub fn explore_ok<F>(config: Config, f: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let f = Arc::new(f);
    let bounds = Bounds {
        max_preemptions: config.max_preemptions,
        max_steps: config.max_steps,
        max_timeout_wakeups: config.max_timeout_wakeups,
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut replay: Vec<Tid> = Vec::new();
    let mut pending_sleep: Vec<Tid> = Vec::new();
    let mut report = Report {
        schedules: 0,
        redundant: 0,
        exhausted: false,
        max_depth: 0,
    };
    loop {
        let out = run_once(bounds, replay.clone(), pending_sleep.clone(), &f);
        report.schedules += 1;
        if let Some(v) = out.violation {
            return Err(v);
        }
        if out.pruned_from.is_some() {
            report.redundant += 1;
        }
        report.max_depth = report.max_depth.max(out.schedule.len());
        assert!(
            out.schedule.len() >= replay.len(),
            "nondeterministic execution: run decided {} times, replay prefix has {}",
            out.schedule.len(),
            replay.len()
        );
        assert_eq!(
            stack.len(),
            replay.len(),
            "explorer stack out of sync with replay prefix"
        );
        for (i, nf) in out.new_frames.into_iter().enumerate() {
            // Frames past the prune point are redundant: mark every
            // sibling tried so backtracking skips them.
            let fully_tried = out.pruned_from.is_some_and(|p| i >= p);
            stack.push(Frame {
                tried: if fully_tried {
                    nf.enabled.clone()
                } else {
                    vec![nf.chosen]
                },
                enabled: nf.enabled,
                sleep: nf.sleep,
                last_running: nf.last_running,
                preemptions: nf.preemptions,
            });
        }
        if report.schedules >= config.max_schedules {
            return Ok(report);
        }
        let Some((depth, cand)) = next_backtrack(&stack, config.max_preemptions) else {
            report.exhausted = true;
            return Ok(report);
        };
        replay = out.schedule[..depth].to_vec();
        replay.push(cand);
        let fr = &mut stack[depth];
        fr.tried.push(cand);
        // Explored siblings (and the frame's inherited sleepers) sleep
        // in the new branch until a dependent transition wakes them.
        let sleep_set: std::collections::BTreeSet<Tid> = fr
            .sleep
            .iter()
            .chain(fr.tried.iter())
            .copied()
            .filter(|&t| t != cand)
            .collect();
        pending_sleep = sleep_set.into_iter().collect();
        stack.truncate(depth + 1);
    }
}

/// Like [`explore_ok`], but panics with the rendered trace on a
/// violation — the convenient form for tests.
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match explore_ok(config, f) {
        Ok(report) => report,
        Err(violation) => panic!("{violation}"),
    }
}
