//! The instrumented side of the facade: a deterministic, bounded
//! stateless model checker in the loom/shuttle family.
//!
//! # How it works
//!
//! Model threads are real OS threads, but exactly one holds the
//! scheduler token at any time. Every visible operation — lock
//! acquisition, atomic access, `Condvar` wait, join, sleep — is a
//! *yield point*: the thread parks, the scheduler picks the next
//! runnable thread (following a replayed prefix, then a deterministic
//! default), and execution continues. A *transition* is one granted
//! operation plus everything the thread does up to its next yield
//! point; because all shared state lives behind the facade, the code
//! between yield points is thread-local and transitions commute
//! exactly when their recorded accesses are independent.
//!
//! The explorer enumerates schedules depth-first with two prunings:
//! **sleep sets** (an explored sibling stays asleep until a dependent
//! transition wakes it, so commuting orders are visited once) and a
//! **preemption bound** (schedules that switch away from a runnable
//! thread more than `max_preemptions` times are skipped — the classic
//! CHESS result that real concurrency bugs need very few preemptions).
//! Terminal invariants are plain `assert!`s in the modeled closure;
//! any panic, deadlock, or lost wakeup aborts exploration and is
//! reported with the exact schedule and a step-by-step trace.

mod explorer;
mod runtime;
pub mod sync;
pub mod thread;

pub use explorer::{explore, explore_ok, Config, Report};
pub use runtime::{Violation, ViolationKind};
