//! Execution state and the token-passing scheduler.
//!
//! One [`Execution`] models one run of the user closure under one
//! schedule. Model threads park on the execution's condvar; the
//! scheduler (run inline by whichever thread just yielded) grants the
//! token to the next thread according to the replay prefix and the
//! default policy, records every decision for the explorer, and
//! detects deadlocks when no thread is runnable.
//!
//! # Transitions and soundness of the sleep-set pruning
//!
//! A *transition* is one granted yield-point operation plus the
//! thread-local code that follows it up to the next yield point. The
//! only shared-state effects a transition's tail may contain are lock
//! releases (guard drops), spawns, fast-path joins, and object
//! registrations — each of which provably cannot conflict with any
//! *sleeping* thread's next operation (a sleeping thread is enabled,
//! so a lock it wants is free; a release can only enable). Every
//! operation that could conflict — acquisition, atomic access, wait
//! enqueue, notify — is its own yield point, so the dependence check
//! that wakes sleepers sees the full footprint of both sides.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Model thread id (creation order; 0 is the closure's main thread).
pub(crate) type Tid = usize;
/// Model object id (creation order within one execution).
pub(crate) type ObjId = usize;

/// What kind of primitive a model object is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ObjKind {
    Mutex,
    RwLock,
    Condvar,
    Atomic,
}

impl ObjKind {
    fn label(self) -> &'static str {
        match self {
            ObjKind::Mutex => "Mutex",
            ObjKind::RwLock => "RwLock",
            ObjKind::Condvar => "Condvar",
            ObjKind::Atomic => "Atomic",
        }
    }
}

/// How a lock is being acquired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AcqKind {
    Lock,
    Read,
    Write,
}

/// The operation a parked thread performs when next granted the token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Pending {
    /// About to run the thread body.
    Start,
    /// Blocked acquiring a lock.
    Acquire { obj: ObjId, kind: AcqKind },
    /// About to perform an atomic operation.
    AtomicOp { obj: ObjId, write: bool },
    /// About to atomically release the mutex and enqueue on a condvar.
    WaitEnq {
        cv: ObjId,
        mutex: ObjId,
        timed: bool,
    },
    /// Parked on a condvar (holding no lock).
    Wait {
        cv: ObjId,
        mutex: ObjId,
        timed: bool,
    },
    /// Notified (or timed out); reacquiring the condvar's mutex.
    Reacquire {
        cv: ObjId,
        mutex: ObjId,
        timed_out: bool,
    },
    /// About to notify a condvar.
    Notify { cv: ObjId, all: bool },
    /// Waiting for another model thread to finish.
    Join { target: Tid },
    /// A `sleep`/`yield_now` point: runnable, touches nothing.
    Pause,
    /// Thread body returned.
    Finished,
}

/// One access performed during a transition, for dependence checks.
#[derive(Clone, Copy, Debug)]
struct AccessRec {
    obj: ObjId,
    write: bool,
}

/// A compact trace event; rendered with names only on violation.
#[derive(Clone, Copy, Debug)]
enum Ev {
    Start,
    Acquire { obj: ObjId, kind: AcqKind },
    Release { obj: ObjId },
    Atomic { obj: ObjId, write: bool },
    WaitEnq { cv: ObjId, mutex: ObjId },
    TimeoutWake { cv: ObjId, mutex: ObjId },
    Notified { cv: ObjId, mutex: ObjId },
    NotifyOne { cv: ObjId, woke: Option<Tid> },
    NotifyAll { cv: ObjId, woke: usize },
    Spawn { child: Tid },
    Join { target: Tid },
    Pause,
    Finish,
}

/// One model object's scheduler-visible state.
struct ObjectState {
    kind: ObjKind,
    /// Mutex owner, or RwLock writer.
    owner: Option<Tid>,
    /// RwLock readers.
    readers: BTreeSet<Tid>,
    /// Condvar waiters, FIFO.
    waiters: VecDeque<Tid>,
}

struct ThreadState {
    pending: Pending,
    granted: bool,
    name: String,
}

/// A fresh (not replayed) scheduling decision, reported to the
/// explorer for backtracking.
pub(crate) struct NewFrame {
    pub(crate) enabled: Vec<Tid>,
    pub(crate) sleep: BTreeSet<Tid>,
    pub(crate) last_running: Option<Tid>,
    pub(crate) preemptions: usize,
    pub(crate) chosen: Tid,
}

/// Why exploration stopped on this schedule.
#[derive(Clone, Debug)]
pub enum ViolationKind {
    /// A model thread panicked (failed `assert!` or library panic).
    Panic(String),
    /// No thread is runnable while work remains.
    Deadlock(String),
    /// A deadlock in which every stuck thread is parked on a `Condvar`
    /// that no remaining thread can notify.
    LostWakeup(String),
}

/// A failing schedule: what went wrong, on which schedule, with the
/// full step-by-step trace.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The failure class and its diagnosis.
    pub kind: ViolationKind,
    /// The choice sequence that reproduces the failure (one entry per
    /// multi-way scheduling decision).
    pub schedule: Vec<usize>,
    /// Human-readable step-by-step trace of the failing execution.
    pub trace: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match &self.kind {
            ViolationKind::Panic(m) => ("panic", m),
            ViolationKind::Deadlock(m) => ("deadlock", m),
            ViolationKind::LostWakeup(m) => ("lost wakeup", m),
        };
        writeln!(f, "model violation: {tag}")?;
        writeln!(f, "{msg}")?;
        writeln!(
            f,
            "failing schedule (decision choices): {:?}",
            self.schedule
        )?;
        write!(f, "trace:\n{}", self.trace)
    }
}

/// Exploration bounds (the validated core of
/// [`Config`](crate::model::Config)).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Bounds {
    pub(crate) max_preemptions: usize,
    pub(crate) max_steps: usize,
    pub(crate) max_timeout_wakeups: u32,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    objects: Vec<ObjectState>,
    trace: Vec<(Tid, Ev)>,
    /// Choices made this run, one per multi-way decision.
    pub(crate) schedule: Vec<Tid>,
    replay: Vec<Tid>,
    /// Sleep set to activate at the final replayed decision.
    pending_sleep: Vec<Tid>,
    sleep: BTreeSet<Tid>,
    /// Fresh decisions recorded for the explorer.
    pub(crate) new_frames: Vec<NewFrame>,
    /// Index into `new_frames` from which the run became redundant
    /// (every viable alternative was asleep or over the preemption
    /// bound).
    pub(crate) pruned_from: Option<usize>,
    /// Accesses of the transition currently executing.
    cur_accesses: Vec<AccessRec>,
    /// The thread executing the current transition.
    cur_executor: Option<Tid>,
    /// Set when the current transition finished its thread.
    cur_finished: bool,
    last_running: Option<Tid>,
    preemptions: usize,
    steps: usize,
    live: usize,
    spurious_left: Vec<u32>,
    pub(crate) violation: Option<Violation>,
    pub(crate) completed: bool,
    bounds: Bounds,
}

/// One modeled run: scheduler state plus the condvar model threads
/// park on.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cond: Condvar,
}

// ---------------------------------------------------------------------------
// Thread-local identity: which execution (if any) this OS thread
// belongs to. Threads without a context — including vendored-rayon
// workers — fall back to real std primitives inside the facade types.
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: Tid,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// A facade object's link to the execution it was created under.
#[derive(Clone)]
pub(crate) struct ModelRef {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: ObjId,
}

impl fmt::Debug for ModelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModelRef(#{})", self.id)
    }
}

/// Registers a new model object if the constructing thread is inside
/// an execution.
pub(crate) fn register_object(kind: ObjKind) -> Option<ModelRef> {
    let ctx = current()?;
    let id = ctx.exec.add_object(kind);
    Some(ModelRef { exec: ctx.exec, id })
}

/// The current thread's model id, when `m` belongs to the execution
/// this thread runs in — the only case where model scheduling applies.
pub(crate) fn active(m: &ModelRef) -> Option<Tid> {
    let ctx = current()?;
    Arc::ptr_eq(&ctx.exec, &m.exec).then_some(ctx.tid)
}

// ---------------------------------------------------------------------------
// Dependence
// ---------------------------------------------------------------------------

/// Whether a sleeping thread's next operation `p` conflicts with one
/// recorded access of the transition that just executed.
fn conflicts(p: Pending, a: AccessRec) -> bool {
    match p {
        Pending::Acquire { obj, kind } => a.obj == obj && (a.write || kind != AcqKind::Read),
        Pending::AtomicOp { obj, write } => a.obj == obj && (a.write || write),
        Pending::WaitEnq { cv, mutex, .. } | Pending::Wait { cv, mutex, .. } => {
            a.obj == cv || a.obj == mutex
        }
        Pending::Reacquire { mutex, .. } => a.obj == mutex,
        Pending::Notify { cv, .. } => a.obj == cv,
        Pending::Start | Pending::Join { .. } | Pending::Pause | Pending::Finished => false,
    }
}

impl ExecState {
    /// Removes from the sleep set every thread whose next operation
    /// depends on the transition that just executed.
    fn filter_sleep(&mut self) {
        if self.sleep.is_empty() {
            self.cur_accesses.clear();
            return;
        }
        let accesses = std::mem::take(&mut self.cur_accesses);
        let executor = self.cur_executor;
        let threads = &self.threads;
        self.sleep.retain(|&t| {
            let p = threads[t].pending;
            // A join's order only matters relative to steps of its
            // target (any of which may be the one that finishes it).
            if let Pending::Join { target } = p {
                return executor != Some(target);
            }
            !accesses.iter().any(|&a| conflicts(p, a))
        });
    }

    fn enabled_of(&self, tid: Tid) -> bool {
        match self.threads[tid].pending {
            Pending::Start
            | Pending::AtomicOp { .. }
            | Pending::WaitEnq { .. }
            | Pending::Notify { .. }
            | Pending::Pause => true,
            Pending::Finished => false,
            Pending::Acquire { obj, kind } => {
                let o = &self.objects[obj];
                match kind {
                    AcqKind::Lock | AcqKind::Read => o.owner.is_none(),
                    AcqKind::Write => o.owner.is_none() && o.readers.is_empty(),
                }
            }
            // A timed wait may "time out now" (and atomically
            // reacquire) while budget remains; an untimed wait is
            // runnable only after a notify converts it to Reacquire.
            Pending::Wait { mutex, timed, .. } => {
                timed && self.spurious_left[tid] > 0 && self.objects[mutex].owner.is_none()
            }
            Pending::Reacquire { mutex, .. } => self.objects[mutex].owner.is_none(),
            Pending::Join { target } => {
                matches!(self.threads[target].pending, Pending::Finished)
            }
        }
    }

    fn enabled(&self) -> Vec<Tid> {
        (0..self.threads.len())
            .filter(|&t| self.enabled_of(t))
            .collect()
    }

    // -- naming helpers (violation rendering only) ----------------------

    fn obj_name(&self, obj: ObjId) -> String {
        format!("{}#{obj}", self.objects[obj].kind.label())
    }

    fn thread_name(&self, tid: Tid) -> String {
        format!("T{tid} `{}`", self.threads[tid].name)
    }

    fn render_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (step, &(tid, ev)) in self.trace.iter().enumerate() {
            let who = self.thread_name(tid);
            let what = match ev {
                Ev::Start => "starts".to_string(),
                Ev::Acquire { obj, kind } => {
                    let verb = match kind {
                        AcqKind::Lock => "locks",
                        AcqKind::Read => "read-locks",
                        AcqKind::Write => "write-locks",
                    };
                    format!("{verb} {}", self.obj_name(obj))
                }
                Ev::Release { obj } => format!("releases {}", self.obj_name(obj)),
                Ev::Atomic { obj, write } => format!(
                    "{} {}",
                    if write {
                        "atomically updates"
                    } else {
                        "atomically loads"
                    },
                    self.obj_name(obj)
                ),
                Ev::WaitEnq { cv, mutex } => format!(
                    "releases {} and waits on {}",
                    self.obj_name(mutex),
                    self.obj_name(cv)
                ),
                Ev::TimeoutWake { cv, mutex } => format!(
                    "times out on {} and reacquires {}",
                    self.obj_name(cv),
                    self.obj_name(mutex)
                ),
                Ev::Notified { cv, mutex } => format!(
                    "wakes (notified) on {} and reacquires {}",
                    self.obj_name(cv),
                    self.obj_name(mutex)
                ),
                Ev::NotifyOne { cv, woke } => match woke {
                    Some(w) => format!(
                        "notify_one on {} -> wakes {}",
                        self.obj_name(cv),
                        self.thread_name(w)
                    ),
                    None => {
                        format!("notify_one on {} -> no waiter (dropped)", self.obj_name(cv))
                    }
                },
                Ev::NotifyAll { cv, woke } => {
                    format!(
                        "notify_all on {} -> wakes {woke} waiter(s)",
                        self.obj_name(cv)
                    )
                }
                Ev::Spawn { child } => format!("spawns {}", self.thread_name(child)),
                Ev::Join { target } => format!("joins {}", self.thread_name(target)),
                Ev::Pause => "yields (sleep/yield_now)".to_string(),
                Ev::Finish => "finishes".to_string(),
            };
            let _ = writeln!(out, "  step {step:>3}: {who} {what}");
        }
        out
    }

    /// Builds the deadlock/lost-wakeup diagnosis for the current
    /// stuck state.
    fn diagnose_stuck(&self) -> ViolationKind {
        use std::fmt::Write as _;
        let mut msg = String::new();
        let mut stuck = Vec::new();
        // A stuck thread is "condvar-stuck" if it waits on a condvar
        // nobody can notify, or (transitively) joins such a thread.
        let mut cond_stuck = vec![false; self.threads.len()];
        for (tid, th) in self.threads.iter().enumerate() {
            let line = match th.pending {
                Pending::Finished => continue,
                Pending::Acquire { obj, kind } => {
                    let o = &self.objects[obj];
                    let holder = match (o.owner, o.readers.is_empty()) {
                        (Some(w), _) => format!("held by {}", self.thread_name(w)),
                        (None, false) => format!(
                            "read-held by {:?}",
                            o.readers.iter().copied().collect::<Vec<_>>()
                        ),
                        (None, true) => "unheld".to_string(),
                    };
                    format!(
                        "blocked {} {} ({holder})",
                        match kind {
                            AcqKind::Lock => "locking",
                            AcqKind::Read => "read-locking",
                            AcqKind::Write => "write-locking",
                        },
                        self.obj_name(obj)
                    )
                }
                Pending::Wait { cv, .. } => {
                    cond_stuck[tid] = true;
                    format!(
                        "parked on {} with no notify left to wake it",
                        self.obj_name(cv)
                    )
                }
                Pending::Reacquire { cv, mutex, .. } => {
                    format!(
                        "woken from {} but blocked reacquiring {}",
                        self.obj_name(cv),
                        self.obj_name(mutex)
                    )
                }
                Pending::Join { target } => {
                    format!("joining {}", self.thread_name(target))
                }
                Pending::Start
                | Pending::AtomicOp { .. }
                | Pending::WaitEnq { .. }
                | Pending::Notify { .. }
                | Pending::Pause => {
                    // Always-enabled kinds: unreachable in a stuck state.
                    continue;
                }
            };
            stuck.push(tid);
            let _ = writeln!(msg, "  {}: {line}", self.thread_name(tid));
        }
        if let Some(cycle) = self.waits_for_cycle(&stuck) {
            let mut rendered = String::from("  waits-for cycle: ");
            for (i, (tid, via)) in cycle.iter().enumerate() {
                if i > 0 {
                    rendered.push_str(" -> ");
                }
                let _ = write!(rendered, "{}", self.thread_name(*tid));
                if let Some(obj) = via {
                    let _ = write!(rendered, " --[{}]", self.obj_name(*obj));
                }
            }
            msg.push_str(&rendered);
            msg.push('\n');
        }
        // Propagate: joining a condvar-stuck thread is itself being
        // stuck on that lost wakeup.
        let mut changed = true;
        while changed {
            changed = false;
            for &tid in &stuck {
                if cond_stuck[tid] {
                    continue;
                }
                if let Pending::Join { target } = self.threads[tid].pending {
                    if cond_stuck[target] {
                        cond_stuck[tid] = true;
                        changed = true;
                    }
                }
            }
        }
        if !stuck.is_empty() && stuck.iter().all(|&t| cond_stuck[t]) {
            ViolationKind::LostWakeup(msg)
        } else {
            ViolationKind::Deadlock(msg)
        }
    }

    /// Finds a cycle in the waits-for graph among `stuck` threads.
    /// Returns the cycle as `(thread, lock it waits through)` pairs.
    fn waits_for_cycle(&self, stuck: &[Tid]) -> Option<Vec<(Tid, Option<ObjId>)>> {
        // Each stuck thread has at most one outgoing edge (to one
        // representative holder, for rendering).
        let next = |tid: Tid| -> Option<(Tid, Option<ObjId>)> {
            match self.threads[tid].pending {
                Pending::Acquire { obj, .. } | Pending::Reacquire { mutex: obj, .. } => {
                    let o = &self.objects[obj];
                    o.owner
                        .or_else(|| o.readers.iter().next().copied())
                        .map(|w| (w, Some(obj)))
                }
                Pending::Join { target } => Some((target, None)),
                _ => None,
            }
        };
        for &start in stuck {
            let mut path = vec![start];
            let mut via = Vec::new();
            let mut cur = start;
            for _ in 0..self.threads.len() {
                let Some((n, obj)) = next(cur) else { break };
                via.push(obj);
                if let Some(pos) = path.iter().position(|&p| p == n) {
                    let mut cycle: Vec<(Tid, Option<ObjId>)> = path[pos..]
                        .iter()
                        .zip(via[pos..].iter())
                        .map(|(&t, &o)| (t, o))
                        .collect();
                    cycle.push((n, None));
                    return Some(cycle);
                }
                path.push(n);
                cur = n;
            }
        }
        None
    }
}

impl Execution {
    pub(crate) fn new(bounds: Bounds, replay: Vec<Tid>, pending_sleep: Vec<Tid>) -> Arc<Self> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                objects: Vec::new(),
                trace: Vec::new(),
                schedule: Vec::new(),
                replay,
                pending_sleep,
                sleep: BTreeSet::new(),
                new_frames: Vec::new(),
                pruned_from: None,
                cur_accesses: Vec::new(),
                cur_executor: None,
                cur_finished: false,
                last_running: None,
                preemptions: 0,
                steps: 0,
                live: 0,
                spurious_left: Vec::new(),
                violation: None,
                completed: false,
                bounds,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut ExecState) -> R) -> R {
        f(&mut self.lock())
    }

    /// Blocks the driver until the run completes or violates.
    pub(crate) fn wait_outcome(&self) {
        let mut st = self.lock();
        while !st.completed && st.violation.is_none() {
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn add_object(&self, kind: ObjKind) -> ObjId {
        let mut st = self.lock();
        st.objects.push(ObjectState {
            kind,
            owner: None,
            readers: BTreeSet::new(),
            waiters: VecDeque::new(),
        });
        st.objects.len() - 1
    }

    /// Registers a model thread; the caller later runs
    /// [`Execution::thread_main`] on the real OS thread.
    pub(crate) fn register_thread(&self, name: String, granted: bool) -> Tid {
        let mut st = self.lock();
        let budget = st.bounds.max_timeout_wakeups;
        st.threads.push(ThreadState {
            pending: Pending::Start,
            granted,
            name,
        });
        st.spurious_left.push(budget);
        st.live += 1;
        st.threads.len() - 1
    }

    /// Records a child spawn (silent: the child becomes schedulable at
    /// the parent's next yield point; a fresh thread's first step
    /// cannot conflict with any sleeping thread).
    pub(crate) fn spawn_child(&self, parent: Tid, name: String) -> Tid {
        let child = self.register_thread(name, false);
        let mut st = self.lock();
        st.trace.push((parent, Ev::Spawn { child }));
        child
    }

    /// The body wrapper every model OS thread runs: waits for its
    /// first grant, runs `f`, converts panics into violations.
    pub(crate) fn thread_main<T>(self: &Arc<Self>, tid: Tid, f: impl FnOnce() -> T) -> Option<T> {
        set_ctx(Some(Ctx {
            exec: Arc::clone(self),
            tid,
        }));
        self.yield_park(tid);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        set_ctx(None);
        match result {
            Ok(v) => {
                self.finish(tid);
                Some(v)
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                self.record_violation_msg(tid, msg);
                None
            }
        }
    }

    // -- yield points ---------------------------------------------------

    /// Parks with `pending`, schedules the next thread, and performs
    /// this thread's operation once the token comes back.
    fn park_and_perform(&self, me: Tid, pending: Pending) {
        let mut st = self.lock();
        st.threads[me].pending = pending;
        self.schedule_next(&mut st);
        self.cond.notify_all();
        drop(st);
        self.yield_park(me);
    }

    /// Waits until granted; on grant, performs the pending operation's
    /// state transition. A `WaitEnq` grant re-parks instead of
    /// returning (the thread is then a condvar waiter).
    fn yield_park(&self, me: Tid) {
        let mut st = self.lock();
        loop {
            if st.violation.is_some() {
                // Run abandoned: park forever; the OS thread leaks by
                // design (we cannot unwind someone else's stack).
                st = self
                    .cond
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            if st.threads[me].granted {
                st.threads[me].granted = false;
                if self.perform_granted(&mut st, me) {
                    return;
                }
                // Re-parked (wait enqueue): hand the token onward, and
                // loop straight back — the inline scheduler may have
                // granted *us* again (timeout fire) with nobody left
                // to notify a fresh wait.
                self.cond.notify_all();
                continue;
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Applies the state transition of `me`'s pending operation at the
    /// moment it receives the token; records trace + access footprint.
    /// Returns `false` when the thread re-parked instead of resuming.
    fn perform_granted(&self, st: &mut ExecState, me: Tid) -> bool {
        st.cur_executor = Some(me);
        match st.threads[me].pending {
            Pending::Start => {
                st.trace.push((me, Ev::Start));
                true
            }
            Pending::Acquire { obj, kind } => {
                match kind {
                    AcqKind::Lock | AcqKind::Write => st.objects[obj].owner = Some(me),
                    AcqKind::Read => {
                        st.objects[obj].readers.insert(me);
                    }
                }
                st.trace.push((me, Ev::Acquire { obj, kind }));
                st.cur_accesses.push(AccessRec {
                    obj,
                    write: kind != AcqKind::Read,
                });
                true
            }
            Pending::AtomicOp { obj, write } => {
                st.trace.push((me, Ev::Atomic { obj, write }));
                st.cur_accesses.push(AccessRec { obj, write });
                true
            }
            Pending::WaitEnq { cv, mutex, timed } => {
                // Atomic release + enqueue, then immediately re-park as
                // a waiter: this transition is exactly these two
                // accesses, so sleeping threads see its full footprint.
                debug_assert_eq!(st.objects[mutex].owner, Some(me));
                st.objects[mutex].owner = None;
                st.objects[cv].waiters.push_back(me);
                st.threads[me].pending = Pending::Wait { cv, mutex, timed };
                st.trace.push((me, Ev::WaitEnq { cv, mutex }));
                st.cur_accesses.push(AccessRec {
                    obj: mutex,
                    write: true,
                });
                st.cur_accesses.push(AccessRec {
                    obj: cv,
                    write: true,
                });
                self.schedule_next(st);
                false
            }
            Pending::Wait { cv, mutex, .. } => {
                // Grant of a still-waiting (timed) thread: the timeout
                // fires and the mutex is reacquired in one step.
                st.objects[cv].waiters.retain(|&w| w != me);
                st.spurious_left[me] = st.spurious_left[me].saturating_sub(1);
                st.objects[mutex].owner = Some(me);
                st.threads[me].pending = Pending::Reacquire {
                    cv,
                    mutex,
                    timed_out: true,
                };
                st.trace.push((me, Ev::TimeoutWake { cv, mutex }));
                st.cur_accesses.push(AccessRec {
                    obj: cv,
                    write: true,
                });
                st.cur_accesses.push(AccessRec {
                    obj: mutex,
                    write: true,
                });
                true
            }
            Pending::Reacquire {
                cv,
                mutex,
                timed_out,
            } => {
                st.objects[mutex].owner = Some(me);
                if !timed_out {
                    st.trace.push((me, Ev::Notified { cv, mutex }));
                }
                st.cur_accesses.push(AccessRec {
                    obj: mutex,
                    write: true,
                });
                true
            }
            Pending::Notify { cv, all } => {
                let mut woke = Vec::new();
                while let Some(w) = st.objects[cv].waiters.pop_front() {
                    let Pending::Wait { cv: wcv, mutex, .. } = st.threads[w].pending else {
                        unreachable!("condvar waiter not in Wait state");
                    };
                    debug_assert_eq!(wcv, cv);
                    st.threads[w].pending = Pending::Reacquire {
                        cv,
                        mutex,
                        timed_out: false,
                    };
                    woke.push(w);
                    if !all {
                        break;
                    }
                }
                if all {
                    st.trace.push((
                        me,
                        Ev::NotifyAll {
                            cv,
                            woke: woke.len(),
                        },
                    ));
                } else {
                    st.trace.push((
                        me,
                        Ev::NotifyOne {
                            cv,
                            woke: woke.first().copied(),
                        },
                    ));
                }
                st.cur_accesses.push(AccessRec {
                    obj: cv,
                    write: true,
                });
                true
            }
            Pending::Join { target } => {
                st.trace.push((me, Ev::Join { target }));
                true
            }
            Pending::Pause => {
                st.trace.push((me, Ev::Pause));
                true
            }
            Pending::Finished => unreachable!("finished threads are never granted"),
        }
    }

    /// Lock acquisition yield point.
    pub(crate) fn acquire(&self, me: Tid, obj: ObjId, kind: AcqKind) {
        self.park_and_perform(me, Pending::Acquire { obj, kind });
    }

    /// Silent lock release (a release can never block and only ever
    /// *enables* other threads, so no scheduling decision is needed;
    /// see the module docs for why this preserves soundness).
    pub(crate) fn release(&self, me: Tid, obj: ObjId, kind: AcqKind) {
        let mut st = self.lock();
        match kind {
            AcqKind::Lock | AcqKind::Write => {
                debug_assert_eq!(st.objects[obj].owner, Some(me));
                st.objects[obj].owner = None;
            }
            AcqKind::Read => {
                st.objects[obj].readers.remove(&me);
            }
        }
        st.trace.push((me, Ev::Release { obj }));
        st.cur_accesses.push(AccessRec { obj, write: true });
    }

    /// Atomic operation yield point; the caller performs the real
    /// atomic op after this returns (single-token execution makes the
    /// grant order the op order).
    pub(crate) fn atomic(&self, me: Tid, obj: ObjId, write: bool) {
        self.park_and_perform(me, Pending::AtomicOp { obj, write });
    }

    /// Condvar wait: atomically releases the mutex and parks; returns
    /// `true` when the wake was a (modeled) timeout rather than a
    /// notify. The caller must have dropped the real mutex guard first
    /// and re-locks the real mutex after return.
    pub(crate) fn cond_wait(&self, me: Tid, cv: ObjId, mutex: ObjId, timed: bool) -> bool {
        self.park_and_perform(me, Pending::WaitEnq { cv, mutex, timed });
        // The grant chain ended with a Reacquire carrying the wake kind.
        let st = self.lock();
        match st.threads[me].pending {
            Pending::Reacquire { timed_out, .. } => timed_out,
            other => unreachable!("woken waiter has pending {other:?}"),
        }
    }

    /// Notify yield point.
    pub(crate) fn notify(&self, me: Tid, cv: ObjId, all: bool) {
        self.park_and_perform(me, Pending::Notify { cv, all });
    }

    /// Join yield point: waits until `target` finishes. Fast path when
    /// it already has.
    pub(crate) fn join(&self, me: Tid, target: Tid) {
        {
            let mut st = self.lock();
            if matches!(st.threads[target].pending, Pending::Finished) {
                st.trace.push((me, Ev::Join { target }));
                return;
            }
        }
        self.park_and_perform(me, Pending::Join { target });
    }

    /// `sleep`/`yield_now` yield point.
    pub(crate) fn pause(&self, me: Tid) {
        self.park_and_perform(me, Pending::Pause);
    }

    /// Thread completion: marks finished and schedules the next thread.
    fn finish(&self, me: Tid) {
        let mut st = self.lock();
        st.threads[me].pending = Pending::Finished;
        st.live -= 1;
        st.trace.push((me, Ev::Finish));
        st.cur_finished = true;
        self.schedule_next(&mut st);
        self.cond.notify_all();
    }

    /// Records a panic as a violation and abandons the run.
    fn record_violation_msg(&self, tid: Tid, msg: String) {
        let mut st = self.lock();
        if st.violation.is_none() {
            let v = Violation {
                kind: ViolationKind::Panic(format!("{}: {msg}", st.thread_name(tid))),
                schedule: st.schedule.clone(),
                trace: st.render_trace(),
            };
            st.violation = Some(v);
        }
        self.cond.notify_all();
    }

    // -- the scheduler --------------------------------------------------

    /// Ends the current transition and picks who runs next. Called
    /// with the state lock held by the thread that just parked or
    /// finished; the chosen thread is granted the token.
    fn schedule_next(&self, st: &mut ExecState) {
        // Close the finished transition: wake dependent sleepers.
        st.filter_sleep();
        st.cur_accesses.clear();
        st.cur_executor = None;
        st.cur_finished = false;

        if st.violation.is_some() {
            return;
        }
        if st.live == 0 {
            st.completed = true;
            return;
        }
        st.steps += 1;
        if st.steps > st.bounds.max_steps {
            let v = Violation {
                kind: ViolationKind::Panic(format!(
                    "execution exceeded max_steps = {} (livelock, or raise Config::max_steps)",
                    st.bounds.max_steps
                )),
                schedule: st.schedule.clone(),
                trace: st.render_trace(),
            };
            st.violation = Some(v);
            return;
        }

        let enabled = st.enabled();
        if enabled.is_empty() {
            let kind = st.diagnose_stuck();
            let v = Violation {
                kind,
                schedule: st.schedule.clone(),
                trace: st.render_trace(),
            };
            st.violation = Some(v);
            return;
        }

        let choice = if enabled.len() == 1 {
            enabled[0]
        } else {
            self.decide(st, &enabled)
        };
        // Executing a thread invalidates its sleep-set membership (its
        // *next* operation is a different transition).
        st.sleep.remove(&choice);

        if st.last_running.map(|lr| enabled.contains(&lr)) == Some(true)
            && st.last_running != Some(choice)
        {
            st.preemptions += 1;
        }
        st.last_running = Some(choice);
        st.threads[choice].granted = true;
    }

    /// A multi-way scheduling decision: replay, or record a fresh
    /// frame and apply the default policy (continue the running
    /// thread; avoid sleeping threads; respect the preemption bound).
    fn decide(&self, st: &mut ExecState, enabled: &[Tid]) -> Tid {
        let d = st.schedule.len();
        let choice = if d < st.replay.len() {
            let c = st.replay[d];
            assert!(
                enabled.contains(&c),
                "nondeterministic execution: replayed choice T{c} not enabled at decision {d} \
                 (model code must be deterministic given the schedule)"
            );
            if d + 1 == st.replay.len() {
                // Entering the divergent subtree: activate the sleep
                // set the explorer computed for this branch; it is
                // filtered by this very transition when it closes.
                st.sleep = st.pending_sleep.iter().copied().collect();
            }
            c
        } else {
            let last = st.last_running;
            let last_enabled = last.map(|l| enabled.contains(&l)) == Some(true);
            let cands: Vec<Tid> = enabled
                .iter()
                .copied()
                .filter(|t| !st.sleep.contains(t))
                .collect();
            let chosen = if cands.is_empty() {
                // Every enabled thread is asleep: this subtree only
                // repeats explored interleavings. Run to completion
                // (so OS threads exit cleanly) but mark it redundant.
                if st.pruned_from.is_none() {
                    st.pruned_from = Some(st.new_frames.len());
                }
                if last_enabled {
                    last.expect("last_enabled")
                } else {
                    enabled[0]
                }
            } else if last_enabled && cands.contains(&last.expect("last_enabled")) {
                last.expect("last_enabled")
            } else if last_enabled && st.preemptions >= st.bounds.max_preemptions {
                // Every candidate would preempt past the bound;
                // continuing the running thread covers the remainder.
                if st.pruned_from.is_none() {
                    st.pruned_from = Some(st.new_frames.len());
                }
                last.expect("last_enabled")
            } else {
                cands[0]
            };
            st.new_frames.push(NewFrame {
                enabled: enabled.to_vec(),
                sleep: st.sleep.clone(),
                last_running: last,
                preemptions: st.preemptions,
                chosen,
            });
            chosen
        };
        st.schedule.push(choice);
        choice
    }
}
