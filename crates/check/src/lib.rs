//! Deterministic schedule-exploration concurrency checking for the
//! agequant workspace — the role loom/shuttle play in production Rust
//! stacks, vendored std-only like the rest of our toolchain.
//!
//! # The facade
//!
//! Concurrent crates in this workspace import their synchronization
//! primitives from [`sync`] and [`thread`] instead of `std::sync` /
//! `std::thread` (the `SRC001` lint in `agequant-lint` enforces this).
//! In a normal build both modules are 1:1 re-exports of `std`, so the
//! facade compiles away completely — release binaries are bit-identical
//! and the warm paths carry zero overhead.
//!
//! Under the `model` cargo feature (or `--cfg agequant_model`), the
//! same names resolve to instrumented implementations driven by a
//! deterministic scheduler: every lock acquisition, atomic operation,
//! and `Condvar` wait becomes a yield point, and `explore` (an item
//! that only exists in model builds) enumerates
//! bounded thread interleavings depth-first, replaying any failing
//! schedule as a printable trace.
//!
//! # What the checker detects
//!
//! - **Invariant violations**: any panic (e.g. a failed `assert!`)
//!   inside the modeled closure, on any explored interleaving.
//! - **Deadlocks**: no runnable thread while work remains, diagnosed
//!   via the waits-for graph (which thread waits on which lock held by
//!   whom).
//! - **Lost `Condvar` wakeups**: a deadlock in which the stuck threads
//!   are parked on a condition variable no remaining thread can
//!   notify.
//!
//! # Model fidelity and limits
//!
//! The model is sequentially consistent: atomic orderings are accepted
//! but weak-memory reorderings are not explored. `Arc` and `mpsc` pass
//! through un-modeled (channel waits are not yield points — model
//! tests should synchronize through the modeled primitives). Condvar
//! `notify_one` wakes the longest-waiting modeled waiter (FIFO), and a
//! timed wait may spuriously time out a bounded number of times per
//! thread per execution. Threads *not* spawned through the facade
//! (e.g. vendored-rayon workers) fall back to the real `std`
//! primitives inside the same types, so mutual exclusion remains sound
//! even for hybrid workloads — they just don't participate in
//! schedule exploration.

#[cfg(any(feature = "model", agequant_model))]
mod model;

#[cfg(any(feature = "model", agequant_model))]
pub use model::{explore, explore_ok, Config, Report, Violation, ViolationKind};

/// Synchronization primitives: `std::sync` re-exported 1:1 in normal
/// builds, instrumented model-checker versions under `--features
/// model`.
#[cfg(not(any(feature = "model", agequant_model)))]
pub mod sync {
    pub use std::sync::*;
}

/// Threading primitives: `std::thread` re-exported 1:1 in normal
/// builds, instrumented model-checker versions under `--features
/// model`.
#[cfg(not(any(feature = "model", agequant_model)))]
pub mod thread {
    pub use std::thread::*;
}

/// Synchronization primitives, instrumented for schedule exploration.
#[cfg(any(feature = "model", agequant_model))]
pub mod sync {
    pub use crate::model::sync::*;
}

/// Threading primitives, instrumented for schedule exploration.
#[cfg(any(feature = "model", agequant_model))]
pub mod thread {
    pub use crate::model::thread::*;
}
