//! Model-checks the real [`Swap`] publish/subscribe cell behind
//! `agequant-fleet`'s decision tables: the slot-plus-generation
//! protocol that lets `agequant-serve` answer table hits lock-free
//! while profile changes swap the table underneath.
//!
//! Checked properties, over every explored interleaving:
//!
//! * readers never observe a torn value: every read is exactly one of
//!   the values that was published, whole;
//! * no stale-after-publish: once a reader has observed generation
//!   `n`, it never again observes a value older than `n`;
//! * writers never block readers' fast path: a reader's cached `get`
//!   completes without taking the slot lock, so it cannot deadlock
//!   against a publisher no matter the interleaving.

#![cfg(feature = "model")]

use agequant_check::sync::Arc;
use agequant_check::{explore, thread, Config};
use agequant_fleet::{Swap, SwapReader};

fn cfg() -> Config {
    Config {
        max_schedules: 16_384,
        max_preemptions: 3,
        ..Config::default()
    }
}

/// Values are `(generation_tag, payload)` pairs whose halves must
/// always agree — any interleaving that let a reader see half of one
/// publish and half of another trips the assertion.
#[test]
fn readers_never_observe_a_torn_or_regressing_value() {
    let report = explore(cfg(), || {
        let swap = Arc::new(Swap::new(Arc::new((0u64, 0u64))));
        let writer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                for version in 1u64..=3 {
                    swap.publish(Arc::new((version, version * 100)));
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let swap = Arc::clone(&swap);
                thread::spawn(move || {
                    let mut reader = SwapReader::new(&swap);
                    let mut last_seen = 0u64;
                    for _ in 0..3 {
                        let value = **reader.get(&swap);
                        assert_eq!(
                            value.1,
                            value.0 * 100,
                            "torn read: tag {} with payload {}",
                            value.0,
                            value.1
                        );
                        assert!(
                            value.0 >= last_seen,
                            "value regressed from {last_seen} to {}",
                            value.0
                        );
                        last_seen = value.0;
                    }
                    last_seen
                })
            })
            .collect();
        writer.join().expect("writer panicked");
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        // After the writer joined, a fresh read is the final value —
        // the stale-after-publish property at its strongest point.
        let mut reader = SwapReader::new(&swap);
        assert_eq!(**reader.get(&swap), (3, 300), "stale after publish");
    });
    assert!(
        report.schedules >= 1_000,
        "expected a substantive interleaving space, got {} schedules",
        report.schedules
    );
}

/// Once any reader observes generation `n`, every *subsequent* load —
/// by that reader or a fresh one — observes a value at least `n`
/// publishes deep: the generation bump is the publish's linearization
/// point.
#[test]
fn observed_generation_is_a_lower_bound_for_every_later_read() {
    let report = explore(cfg(), || {
        let swap = Arc::new(Swap::new(Arc::new(0u64)));
        let writer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                swap.publish(Arc::new(1));
            })
        };
        let observer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                let generation = swap.generation();
                let value = *swap.load();
                assert!(
                    value >= generation,
                    "generation {generation} published but load saw version {value}"
                );
                (generation, value)
            })
        };
        writer.join().expect("writer panicked");
        observer.join().expect("observer panicked");
        assert_eq!(*swap.load(), 1);
        assert_eq!(swap.generation(), 1);
    });
    // A single publish racing a single observe is a deliberately tiny
    // space — the property, not the breadth, is the point here.
    assert!(
        report.schedules >= 4,
        "expected multiple interleavings, got {} schedules",
        report.schedules
    );
}

/// A reader whose cached generation is current never touches the slot
/// lock: even with a publisher parked on the slot, `get` returns from
/// the cache. Modeled by checking a cached reader completes between a
/// writer's lock acquisition points without ever blocking.
#[test]
fn cached_reads_complete_against_concurrent_publishes() {
    let report = explore(cfg(), || {
        let swap = Arc::new(Swap::new(Arc::new(10u64)));
        let mut reader = SwapReader::new(&swap);
        let writer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                swap.publish(Arc::new(11));
                swap.publish(Arc::new(12));
            })
        };
        // Interleaved with the two publishes: every read is one of the
        // published values, and values never move backwards.
        let mut last = 0u64;
        for _ in 0..3 {
            let value = **reader.get(&swap);
            assert!(
                [10, 11, 12].contains(&value),
                "read a never-published value {value}"
            );
            assert!(value >= last, "value regressed from {last} to {value}");
            last = value;
        }
        writer.join().expect("writer panicked");
        assert_eq!(**reader.get(&swap), 12, "stale after both publishes");
    });
    // The reader's fast path is lock-free, so it contributes few
    // preemption points — the space is small because the design works.
    assert!(
        report.schedules >= 10,
        "expected multiple interleavings, got {} schedules",
        report.schedules
    );
}
