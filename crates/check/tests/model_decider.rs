//! Model-checks the real fleet [`Decider`] memoization protocol: the
//! single memo mutex that racing server workers consult on every cold
//! characterization.
//!
//! Checked properties, over every explored interleaving:
//!
//! * a `(bucket, constraint)` pair is recorded in the characterization
//!   log exactly once no matter how many workers race it — the
//!   nanovolt-keyed engine caches underneath already guarantee one
//!   characterization per key (see `model_engine.rs`), and the
//!   decider-side log must stay consistent with that;
//! * racing workers agree on the decision for a bucket;
//! * [`Decider::buckets_planned`] stays a duplicate-free
//!   first-encounter log.

#![cfg(feature = "model")]

use agequant_check::sync::Arc;
use agequant_check::{explore, thread, Config};
use agequant_core::EvalEngine;
use agequant_fleet::{Decider, FleetConfig};

fn cfg() -> Config {
    Config {
        max_schedules: 8_192,
        // The memo protocol is a handful of lock acquisitions per
        // worker, so buy schedule diversity with preemption depth.
        max_preemptions: 5,
        max_steps: 500_000,
        ..Config::default()
    }
}

/// A shared engine, warmed outside the exploration so its caches are
/// hot (and, having been built outside any modeled execution, its own
/// locks run on the real `std` fast path): each explored schedule then
/// exercises the decider-side memo protocol, not nanosheet physics.
fn warm_engine(config: &FleetConfig) -> Arc<EvalEngine> {
    let engine = Arc::new(EvalEngine::new(config.flow.process.clone()));
    let decider = Decider::with_engine(config, Arc::clone(&engine)).expect("valid config");
    for bucket in 0..=2 {
        decider.decide_bucket(bucket).expect("warms");
    }
    engine
}

/// Two workers race the same cold bucket while two more race a
/// different one: the log gets exactly one entry per bucket, and the
/// racing workers agree on the plan.
#[test]
fn racing_workers_characterize_each_bucket_exactly_once() {
    let config = FleetConfig::new(2, 2021);
    let engine = warm_engine(&config);
    let report = explore(cfg(), move || {
        let decider =
            Arc::new(Decider::with_engine(&config, Arc::clone(&engine)).expect("valid config"));
        let buckets = [1u64, 1, 2, 2];
        let handles: Vec<_> = buckets
            .iter()
            .map(|&bucket| {
                let decider = Arc::clone(&decider);
                thread::spawn(move || decider.decide_bucket(bucket).expect("decides"))
            })
            .collect();
        let decisions: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        assert_eq!(
            format!("{:?}", decisions[0]),
            format!("{:?}", decisions[1]),
            "racing workers disagreed on the plan for bucket 1"
        );
        assert_eq!(
            format!("{:?}", decisions[2]),
            format!("{:?}", decisions[3]),
            "racing workers disagreed on the plan for bucket 2"
        );
        let mut planned = decider.buckets_planned();
        planned.sort_unstable();
        assert_eq!(
            planned,
            vec![1, 2],
            "characterization log gained or lost entries under the race"
        );
    });
    assert!(
        report.schedules >= 1_000,
        "expected a substantive interleaving space, got {} schedules",
        report.schedules
    );
}

/// The warm path is race-free by construction: after one worker has
/// characterized a bucket, concurrent re-decisions must neither extend
/// the log nor change the answer.
#[test]
fn warm_decisions_never_extend_the_log() {
    let config = FleetConfig::new(2, 2021);
    let engine = warm_engine(&config);
    explore(cfg(), move || {
        let decider =
            Arc::new(Decider::with_engine(&config, Arc::clone(&engine)).expect("valid config"));
        let cold = decider.decide_bucket(1).expect("cold decision");
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let decider = Arc::clone(&decider);
                thread::spawn(move || decider.decide_bucket(1).expect("warm decision"))
            })
            .collect();
        for handle in handles {
            let warm = handle.join().expect("worker panicked");
            assert_eq!(
                format!("{warm:?}"),
                format!("{cold:?}"),
                "warm decision diverged from the cold one"
            );
        }
        assert_eq!(decider.buckets_planned(), vec![1]);
    });
}
