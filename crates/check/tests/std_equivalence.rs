//! Std-mode facade equivalence: with the `model` feature off, the
//! `check::sync` facade is a 1:1 `std` re-export, so porting the
//! concurrent crates onto it must leave observable behavior
//! bit-identical. The fixtures under `tests/fixtures/` were generated
//! from the pre-facade code (`AGEQUANT_BLESS=1 cargo test -p
//! agequant-check --test std_equivalence`) and are compared literally.
#![cfg(not(feature = "model"))]

use std::fs;
use std::path::PathBuf;

use agequant_aging::VthShift;
use agequant_fleet::{Decider, FleetConfig, FleetSim};
use agequant_serve::plan_response;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `AGEQUANT_BLESS` is set.
fn check_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("AGEQUANT_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with AGEQUANT_BLESS=1", name));
    assert_eq!(
        expected, actual,
        "{name}: facade build diverged from the pre-facade fixture"
    );
}

/// The server's `/v1/plan` bytes — cold then warm — for a spread of
/// ΔVth shifts covering feasible buckets and the guardband fallback.
#[test]
fn warm_plan_bytes_are_bit_identical_to_the_pre_facade_fixture() {
    let config = FleetConfig::new(4, 2021);
    let decider = Decider::from_config(&config).expect("valid config");
    let mut out = String::new();
    for mv in [0.0, 7.5, 14.0, 23.0, 42.0, 61.0] {
        let decision = decider
            .decide_shift(VthShift::from_millivolts(mv))
            .expect("decides");
        let body = serde_json::to_string(&plan_response(&decider, &decision)).expect("serializes");
        // The warm (cached) answer must be byte-identical to the cold one.
        let warm = decider
            .decide_shift(VthShift::from_millivolts(mv))
            .expect("decides warm");
        assert_eq!(
            serde_json::to_string(&plan_response(&decider, &warm)).expect("serializes"),
            body,
            "warm plan diverged from cold plan at {mv} mV"
        );
        out.push_str(&body);
        out.push('\n');
    }
    check_fixture("plan_bytes.jsonl", &out);
}

/// A short sharded fleet run's summary JSON, pinned byte-for-byte.
#[test]
fn fleet_summary_is_bit_identical_to_the_pre_facade_fixture() {
    let mut config = FleetConfig::new(8, 2021);
    config.epoch_years = 1.5;
    let mut sim = FleetSim::new(config).expect("valid config");
    sim.run(4).expect("simulates");
    check_fixture("fleet_summary.json", &sim.summary().to_json());
}
