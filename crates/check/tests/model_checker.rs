//! Self-tests for the model checker: known-buggy toy protocols must
//! produce violations with replayable traces, and known-correct ones
//! must pass with meaningful schedule coverage.
#![cfg(feature = "model")]

use agequant_check::sync::atomic::{AtomicU64, Ordering};
use agequant_check::sync::{Arc, Condvar, Mutex};
use agequant_check::{explore, explore_ok, thread, Config, ViolationKind};

fn small() -> Config {
    Config {
        max_schedules: 10_000,
        ..Config::default()
    }
}

/// The classic non-atomic read-modify-write race: two threads doing
/// `load; store(+1)` must lose an update on some interleaving.
#[test]
fn finds_the_lost_update_race() {
    let violation = explore_ok(small(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("joins");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost an increment");
    })
    .expect_err("the lost-update race must be found");
    assert!(
        matches!(violation.kind, ViolationKind::Panic(_)),
        "expected a failed assert, got {:?}",
        violation.kind
    );
    assert!(
        violation.trace.contains("atomically"),
        "trace should show the atomic steps:\n{}",
        violation.trace
    );
}

/// With `fetch_add` the same protocol is correct — and the schedule
/// space must be fully exhausted, covering well over the trivial
/// handful of interleavings.
#[test]
fn atomic_increments_pass_exhaustively() {
    let report = explore(small(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("joins");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhausted, "small space must be fully enumerated");
    assert!(
        report.schedules >= 2,
        "both increment orders must be explored, got {}",
        report.schedules
    );
}

/// Mutex-protected increments never lose updates, on any schedule.
#[test]
fn mutex_protects_the_counter() {
    let report = explore(small(), || {
        let counter = Arc::new(Mutex::new(0_u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut g = counter.lock().expect("locks");
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("joins");
        }
        assert_eq!(*counter.lock().expect("locks"), 2);
    });
    assert!(report.exhausted);
}

/// The AB-BA double-lock pattern must be caught as a deadlock with a
/// waits-for cycle in the diagnosis.
#[test]
fn finds_the_abba_deadlock() {
    let violation = explore_ok(small(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("locks a");
            let _gb = b2.lock().expect("locks b");
        });
        {
            let _gb = b.lock().expect("locks b");
            let _ga = a.lock().expect("locks a");
        }
        t.join().expect("joins");
    })
    .expect_err("AB-BA must deadlock on some schedule");
    let ViolationKind::Deadlock(msg) = &violation.kind else {
        panic!("expected a deadlock, got {:?}", violation.kind);
    };
    assert!(
        msg.contains("waits-for cycle"),
        "diagnosis should render the cycle:\n{msg}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "failing schedule must be replayable"
    );
}

/// Notify-before-wait with an untimed wait loses the wakeup forever;
/// the checker must classify it as a lost wakeup, not a plain
/// deadlock.
#[test]
fn finds_the_lost_wakeup() {
    let violation = explore_ok(small(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            // BUG under test: waits without a predicate, so a notify
            // that fires before the wait enqueue is lost forever.
            let guard = lock.lock().expect("locks");
            drop(cv.wait(guard).expect("waits"));
        });
        pair.1.notify_one();
        t.join().expect("joins");
    })
    .expect_err("the notify can fire before the wait on some schedule");
    // The waiter parks forever on a schedule where the notify already
    // fired; the joiner is stuck on the same lost wakeup.
    assert!(
        matches!(violation.kind, ViolationKind::LostWakeup(_)),
        "expected a lost wakeup, got {:?}",
        violation.kind
    );
}

/// The same protocol with a timed wait in a `while` loop is correct:
/// the bounded timeout models the recovery path.
#[test]
fn timed_wait_loop_recovers_from_early_notify() {
    let report = explore(small(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().expect("locks");
            while !*ready {
                let (g, _timeout) = cv
                    .wait_timeout(ready, std::time::Duration::from_millis(50))
                    .expect("waits");
                ready = g;
            }
            assert!(*ready);
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock().expect("locks") = true;
            cv.notify_one();
        }
        t.join().expect("joins");
    });
    assert!(report.exhausted);
    assert!(report.schedules >= 2);
}

/// RwLock: two readers plus one writer; readers must never observe a
/// torn pair of values.
#[test]
fn rwlock_readers_see_consistent_pairs() {
    use agequant_check::sync::RwLock;
    let report = explore(small(), || {
        let state = Arc::new(RwLock::new((0_u64, 0_u64)));
        let writer = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let mut g = state.write().expect("write-locks");
                g.0 = 7;
                g.1 = 7;
            })
        };
        let reader = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let g = state.read().expect("read-locks");
                assert_eq!(g.0, g.1, "reader saw a torn write");
            })
        };
        writer.join().expect("joins");
        reader.join().expect("joins");
    });
    assert!(report.exhausted);
}

/// A failing schedule replays deterministically: the violation carries
/// the decision sequence and a non-empty human-readable trace.
#[test]
fn violations_carry_a_replayable_trace() {
    let run = || {
        explore_ok(small(), || {
            let flag = Arc::new(AtomicU64::new(0));
            let flag2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                flag2.store(1, Ordering::SeqCst);
            });
            let seen = flag.load(Ordering::SeqCst);
            t.join().expect("joins");
            assert_eq!(seen, 0, "planted order-sensitive assert");
        })
        .expect_err("the store can win the race on some schedule")
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.schedule, second.schedule,
        "exploration must be deterministic run to run"
    );
    assert_eq!(first.trace, second.trace);
    assert!(first.trace.contains("step"), "trace: {}", first.trace);
    let rendered = first.to_string();
    assert!(rendered.contains("failing schedule"));
}

/// Scoped threads participate in the model: a three-thread scoped
/// protocol explores a meaningful number of schedules and the implicit
/// scope join is modeled (no false deadlock at scope exit).
#[test]
fn scoped_threads_are_modeled() {
    let report = explore(small(), || {
        let counter = AtomicU64::new(0);
        thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhausted);
    assert!(report.schedules >= 2);
}
