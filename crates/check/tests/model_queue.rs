//! Model-checks the real [`BoundedQueue`] behind `agequant-serve`'s
//! worker pool: the push/pop/close protocol that turns overload into
//! `503` and shutdown into a graceful drain.
//!
//! Checked properties, over every explored interleaving:
//!
//! * no accepted item is lost or delivered twice;
//! * the backlog never exceeds the configured capacity (refusal, not
//!   blocking, is the overload response);
//! * `close` drains: every accepted item is still delivered, and every
//!   blocked consumer wakes and observes the close (no lost wakeup).

#![cfg(feature = "model")]

use agequant_check::sync::Arc;
use agequant_check::{explore, thread, Config};
use agequant_serve::BoundedQueue;

fn cfg() -> Config {
    Config {
        max_schedules: 16_384,
        max_preemptions: 3,
        ..Config::default()
    }
}

/// One producer, two consumers, capacity below the item count so
/// refusals actually occur: the delivered multiset must equal the
/// accepted multiset exactly — nothing lost, nothing doubled — and the
/// drain must complete after `close`.
#[test]
fn queue_never_loses_or_doubles_accepted_work() {
    let report = explore(cfg(), || {
        let queue = Arc::new(BoundedQueue::new(2));
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut accepted = Vec::new();
                for item in 1u32..=3 {
                    assert!(queue.len() <= 2, "backlog exceeded capacity");
                    if queue.try_push(item).is_ok() {
                        accepted.push(item);
                    }
                }
                accepted
            })
        };
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let accepted = producer.join().expect("producer panicked");
        // Close only after the producer is done: from here the
        // graceful-drain contract says every accepted item still
        // reaches a consumer.
        queue.close();
        let mut delivered: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer panicked"))
            .collect();
        delivered.sort_unstable();
        assert_eq!(
            delivered, accepted,
            "drain lost or doubled accepted work (accepted {accepted:?})"
        );
        assert!(queue.is_empty(), "items left behind after the drain");
    });
    assert!(
        report.schedules >= 1_000,
        "expected a substantive interleaving space, got {} schedules",
        report.schedules
    );
}

/// A consumer that blocks *before* anything is pushed must still wake
/// on `close` — the lost-wakeup shape the checker exists to rule out.
#[test]
fn blocked_consumer_always_observes_the_close() {
    explore(cfg(), || {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop())
        };
        queue.close();
        assert_eq!(
            consumer.join().expect("consumer panicked"),
            None,
            "consumer returned work from a closed empty queue"
        );
    });
}

/// A closed queue refuses producers immediately, even while consumers
/// are still draining the backlog.
#[test]
fn close_refuses_new_work_but_keeps_the_backlog() {
    explore(cfg(), || {
        let queue = Arc::new(BoundedQueue::new(2));
        queue.try_push(7u32).expect("open queue accepts");
        queue.close();
        assert!(queue.try_push(8).is_err(), "closed queue accepted work");
        let drainer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || (queue.pop(), queue.pop()))
        };
        assert_eq!(
            drainer.join().expect("drainer panicked"),
            (Some(7), None),
            "backlog was not handed out before the drain completed"
        );
    });
}
