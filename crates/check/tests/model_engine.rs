//! Model-checks the real [`EvalEngine`] characterization cache under
//! concurrent misses.
//!
//! The protocol under test is the double-checked locking in
//! [`EvalEngine::library`]: racing threads that miss on the read lock
//! serialize on the write lock, and the re-check under the write lock
//! guarantees each nanovolt key is characterized exactly once — every
//! caller gets the *same* `Arc`, and the hit/miss counters always sum
//! to the number of calls.
//!
//! These tests run the genuine `agequant-core` code: cargo unifies the
//! `model` feature onto the one `agequant-check` lib, so the engine's
//! `RwLock`s and atomics compile to the instrumented versions and
//! every lock acquisition and counter bump is a schedule point.

#![cfg(feature = "model")]

use agequant_aging::{TechProfile, VthShift};
use agequant_cells::ProcessLibrary;
use agequant_check::sync::Arc;
use agequant_check::{explore, thread, Config};
use agequant_core::EvalEngine;

fn cfg() -> Config {
    Config {
        max_schedules: 8_192,
        // A deeper preemption budget than the default: the DCL protocol
        // is small, so the schedule count (not wall clock) is the
        // binding constraint.
        max_preemptions: 4,
        max_steps: 500_000,
        ..Config::default()
    }
}

/// Three threads race a cold miss on the same nanovolt key: exactly
/// one characterization may happen, all callers must receive the same
/// `Arc`, and the counters must account for every call.
#[test]
fn concurrent_misses_characterize_each_key_exactly_once() {
    let report = explore(cfg(), || {
        let engine = Arc::new(EvalEngine::new(ProcessLibrary::finfet14nm()));
        let shift = VthShift::from_millivolts(20.0);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    engine.library("nbti", &TechProfile::INTEL14NM.derating(), shift)
                })
            })
            .collect();
        let libs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        assert!(
            Arc::ptr_eq(&libs[0], &libs[1]) && Arc::ptr_eq(&libs[1], &libs[2]),
            "racing callers saw different library instances for one key"
        );
        let stats = engine.stats();
        assert_eq!(
            stats.library_misses, 1,
            "a key raced on the miss path was characterized more than once"
        );
        assert_eq!(
            stats.library_hits + stats.library_misses,
            3,
            "cache counters lost a call: {stats:?}"
        );
    });
    assert!(
        report.schedules >= 1_000,
        "expected a substantive interleaving space, got {} schedules",
        report.schedules
    );
}

/// Concurrent misses on *different* keys stay independent: two keys,
/// two characterizations, no aliasing — under every interleaving.
#[test]
fn distinct_keys_never_alias_under_races() {
    let report = explore(cfg(), || {
        let engine = Arc::new(EvalEngine::new(ProcessLibrary::finfet14nm()));
        let mvs = [10.0, 30.0];
        let handles: Vec<_> = mvs
            .iter()
            .map(|&mv| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    engine.library(
                        "nbti",
                        &TechProfile::INTEL14NM.derating(),
                        VthShift::from_millivolts(mv),
                    )
                })
            })
            .collect();
        let libs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        assert!(
            !Arc::ptr_eq(&libs[0], &libs[1]),
            "different nanovolt keys aliased to one cache entry"
        );
        let stats = engine.stats();
        assert_eq!((stats.library_misses, stats.library_hits), (2, 0));
    });
    assert!(report.schedules >= 2, "trivial space: {report:?}");
}
