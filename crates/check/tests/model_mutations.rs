//! Mutation self-test: proves the checker actually catches the bug
//! classes it exists for, by re-running the real-code protocols
//! against two seeded concurrency bugs.
//!
//! The mutations live behind `--cfg agequant_model_mutation` in the
//! production crates themselves (so the mutated code is byte-for-byte
//! the shipped code minus one guard):
//!
//! 1. `EvalEngine::library` drops the double-checked-locking re-check
//!    under the write lock — keys that race on the miss path get
//!    characterized twice and callers see different `Arc`s.
//! 2. `BoundedQueue::pop` degrades its `while` wait loop to a single
//!    `if` — a spurious (timed-out) wakeup on an empty open queue
//!    makes a consumer give up and abandon later accepted work.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg agequant_model_mutation" \
//!   cargo test -p agequant-check --features model --test model_mutations
//! ```
//!
//! In a normal build (no mutation cfg) every test here is a no-op
//! success, so the file can sit in the default test set.

#![cfg(all(feature = "model", agequant_model_mutation))]

use agequant_aging::{TechProfile, VthShift};
use agequant_cells::ProcessLibrary;
use agequant_check::sync::Arc;
use agequant_check::{explore_ok, thread, Config, ViolationKind};
use agequant_core::EvalEngine;
use agequant_serve::BoundedQueue;

fn cfg() -> Config {
    Config {
        max_schedules: 16_384,
        max_preemptions: 3,
        max_steps: 500_000,
        ..Config::default()
    }
}

/// With the re-check gone, there is an interleaving where both racing
/// callers miss on the read lock and each characterizes the key — the
/// checker must find it and hand back a replayable schedule.
#[test]
fn checker_catches_the_dropped_dcl_recheck() {
    let violation = explore_ok(cfg(), || {
        let engine = Arc::new(EvalEngine::new(ProcessLibrary::finfet14nm()));
        let shift = VthShift::from_millivolts(20.0);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    engine.library("nbti", &TechProfile::INTEL14NM.derating(), shift)
                })
            })
            .collect();
        let libs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        assert!(
            Arc::ptr_eq(&libs[0], &libs[1]),
            "racing callers saw different library instances for one key"
        );
        assert_eq!(
            engine.stats().library_misses,
            1,
            "a key raced on the miss path was characterized more than once"
        );
    })
    .expect_err("the dropped re-check must be caught");
    assert!(
        matches!(violation.kind, ViolationKind::Panic(_)),
        "expected an invariant panic, got {:?}",
        violation.kind
    );
    assert!(
        !violation.schedule.is_empty(),
        "violation carries no replayable schedule"
    );
    assert!(
        violation.to_string().contains("failing schedule"),
        "report does not print the failing schedule:\n{violation}"
    );
}

/// With the wait loop degraded to a single `if`, a consumer whose
/// timed wait fires spuriously on an empty open queue returns `None`
/// and abandons the item the producer accepts moments later.
#[test]
fn checker_catches_the_degraded_wait_loop() {
    let violation = explore_ok(cfg(), || {
        let queue = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = queue.pop() {
                    got.push(item);
                }
                got
            })
        };
        queue.try_push(7u32).expect("open queue accepts");
        queue.close();
        assert_eq!(
            consumer.join().expect("consumer panicked"),
            vec![7],
            "consumer abandoned accepted work"
        );
    })
    .expect_err("the degraded wait loop must be caught");
    assert!(
        matches!(violation.kind, ViolationKind::Panic(_)),
        "expected an invariant panic, got {:?}",
        violation.kind
    );
    assert!(
        !violation.schedule.is_empty(),
        "violation carries no replayable schedule"
    );
    assert!(
        violation.to_string().contains("failing schedule"),
        "report does not print the failing schedule:\n{violation}"
    );
}
