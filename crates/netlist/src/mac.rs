//! The paper's MAC unit: 8×8 unsigned multiplier + 22-bit accumulator.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::adders::{add_prefix, bus_bits, Bit, PrefixStyle};
use crate::multipliers::{multiply, MultiplierArch};
use crate::{NetId, Netlist, NetlistBuilder};

/// Geometry of a MAC unit: `f = (a × b + c) mod 2^acc_width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacGeometry {
    /// Width of operand `a` (activations), bits.
    pub a_width: usize,
    /// Width of operand `b` (weights), bits.
    pub b_width: usize,
    /// Width of the accumulator input/output `c`/`f`, bits.
    pub acc_width: usize,
}

impl MacGeometry {
    /// The paper's Edge-TPU-like MAC: 8-bit multiplier, 22-bit adder
    /// ("to prevent accumulation overflow", Section 4).
    pub const EDGE_TPU: MacGeometry = MacGeometry {
        a_width: 8,
        b_width: 8,
        acc_width: 22,
    };

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// The accumulator must be at least as wide as the product and all
    /// widths non-zero (≤ 63 bits so evaluation fits `u64`).
    pub fn validate(self) -> Result<(), String> {
        if self.a_width == 0 || self.b_width == 0 || self.acc_width == 0 {
            return Err("zero-width MAC operand".into());
        }
        if self.acc_width < self.a_width + self.b_width {
            return Err(format!(
                "accumulator ({} bits) narrower than product ({} bits)",
                self.acc_width,
                self.a_width + self.b_width
            ));
        }
        if self.acc_width > 63 {
            return Err("accumulator wider than 63 bits unsupported".into());
        }
        Ok(())
    }
}

/// The synthesized MAC circuit of the paper's NPU (Section 4):
/// an unsigned multiplier feeding an accumulate adder, with buses
/// `a`, `b`, `c` → `f` where `f = (a·b + c) mod 2^acc_width`.
///
/// # Example
///
/// ```
/// use agequant_netlist::mac::MacCircuit;
///
/// let mac = MacCircuit::edge_tpu();
/// assert_eq!(mac.compute(15, 15, 100), 15 * 15 + 100);
/// assert_eq!(mac.netlist().input_buses().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacCircuit {
    geometry: MacGeometry,
    arch: MultiplierArch,
    adder: PrefixStyle,
    netlist: Netlist,
}

impl MacCircuit {
    /// Builds a MAC with explicit geometry and microarchitecture
    /// (one prefix style for both the multiplier's final adder and the
    /// accumulator).
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry fails
    /// [`MacGeometry::validate`].
    pub fn new(
        geometry: MacGeometry,
        arch: MultiplierArch,
        adder: PrefixStyle,
    ) -> Result<Self, String> {
        Self::with_adders(geometry, arch, adder, adder)
    }

    /// Builds a MAC with distinct prefix styles for the multiplier's
    /// final adder and the accumulate adder — synthesis tools routinely
    /// mix adder families inside one datapath.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry fails
    /// [`MacGeometry::validate`].
    pub fn with_adders(
        geometry: MacGeometry,
        arch: MultiplierArch,
        mult_adder: PrefixStyle,
        acc_adder: PrefixStyle,
    ) -> Result<Self, String> {
        geometry.validate()?;
        let mut b = NetlistBuilder::new(format!(
            "mac{}x{}_{}_{}_{}",
            geometry.a_width,
            geometry.b_width,
            arch.name(),
            mult_adder.name(),
            acc_adder.name()
        ));
        let a_bus = b.input_bus("a", geometry.a_width);
        let b_bus = b.input_bus("b", geometry.b_width);
        let c_bus = b.input_bus("c", geometry.acc_width);
        let mut product = multiply(
            &mut b,
            &bus_bits(&a_bus),
            &bus_bits(&b_bus),
            arch,
            mult_adder,
        );
        product.resize(geometry.acc_width, Bit::ZERO);
        let mut f = add_prefix(&mut b, &product, &bus_bits(&c_bus), acc_adder);
        f.truncate(geometry.acc_width); // modular accumulate: drop carry-out
        let f_nets: Vec<NetId> = f.into_iter().map(|bit| bit.into_net(&mut b)).collect();
        b.output_bus("f", &f_nets);
        Ok(MacCircuit {
            geometry,
            arch,
            adder: acc_adder,
            netlist: b.finish(),
        })
    }

    /// The paper's configuration: 8×8 Wallace multiplier with a
    /// Brent–Kung final adder and a Kogge–Stone accumulate adder,
    /// 22-bit accumulator.
    ///
    /// Among the generator combinations this crate offers, this one's
    /// compression→delay-gain profile is closest to the paper's
    /// measured DesignWare MAC (≈22% delay gain at `(4, 4)` input
    /// compression vs the paper's ≈23%, Fig. 2) while keeping balanced
    /// compressions feasible at every aging level; the alternatives
    /// remain available through [`MacCircuit::with_adders`] and are
    /// swept by the ablation benches.
    #[must_use]
    pub fn edge_tpu() -> Self {
        Self::with_adders(
            MacGeometry::EDGE_TPU,
            MultiplierArch::Wallace,
            PrefixStyle::BrentKung,
            PrefixStyle::KoggeStone,
        )
        .expect("EDGE_TPU geometry is valid")
    }

    /// The MAC's geometry.
    #[must_use]
    pub fn geometry(&self) -> MacGeometry {
        self.geometry
    }

    /// The multiplier architecture.
    #[must_use]
    pub fn arch(&self) -> MultiplierArch {
        self.arch
    }

    /// The prefix-adder style.
    #[must_use]
    pub fn adder_style(&self) -> PrefixStyle {
        self.adder
    }

    /// The underlying gate-level netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Functional evaluation through the gate-level netlist.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit its bus.
    #[must_use]
    pub fn compute(&self, a: u64, b: u64, c: u64) -> u64 {
        let out = self
            .netlist
            .evaluate(&BTreeMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
                ("c".to_string(), c),
            ]))
            .expect("operands fit the MAC buses");
        out["f"]
    }

    /// The reference (non-gate-level) result: `(a·b + c) mod 2^acc`.
    #[must_use]
    pub fn reference(&self, a: u64, b: u64, c: u64) -> u64 {
        (a * b + c) & ((1u64 << self.geometry.acc_width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_tpu_matches_reference_on_corners() {
        let mac = MacCircuit::edge_tpu();
        let max_c = (1u64 << 22) - 1;
        for (a, b, c) in [
            (0, 0, 0),
            (255, 255, 0),
            (255, 255, max_c), // wraps
            (1, 1, max_c),
            (128, 2, 42),
            (200, 180, 1_000_000),
        ] {
            assert_eq!(mac.compute(a, b, c), mac.reference(a, b, c), "{a},{b},{c}");
        }
    }

    #[test]
    fn geometry_validation() {
        assert!(MacGeometry::EDGE_TPU.validate().is_ok());
        assert!(MacGeometry {
            a_width: 8,
            b_width: 8,
            acc_width: 15
        }
        .validate()
        .is_err());
        assert!(MacGeometry {
            a_width: 0,
            b_width: 8,
            acc_width: 22
        }
        .validate()
        .is_err());
    }

    #[test]
    fn all_microarchitectures_agree() {
        for arch in MultiplierArch::ALL {
            for adder in PrefixStyle::ALL {
                let mac = MacCircuit::new(MacGeometry::EDGE_TPU, arch, adder).unwrap();
                for (a, b, c) in [(17, 93, 5000), (255, 1, 0), (44, 44, 123456)] {
                    assert_eq!(
                        mac.compute(a, b, c),
                        mac.reference(a, b, c),
                        "{} {}",
                        arch.name(),
                        adder.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mac_has_three_input_buses_and_f_output() {
        let mac = MacCircuit::edge_tpu();
        let n = mac.netlist();
        assert_eq!(n.input_bus("a").unwrap().width(), 8);
        assert_eq!(n.input_bus("b").unwrap().width(), 8);
        assert_eq!(n.input_bus("c").unwrap().width(), 22);
        assert_eq!(n.output_bus("f").unwrap().width(), 22);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The gate-level MAC equals the reference arithmetic for all
        /// operand values.
        #[test]
        fn mac_is_exact(a in 0u64..256, b in 0u64..256, c in 0u64..(1 << 22)) {
            let mac = MacCircuit::edge_tpu();
            prop_assert_eq!(mac.compute(a, b, c), mac.reference(a, b, c));
        }
    }
}
