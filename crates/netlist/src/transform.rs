//! Netlist transformations: dead-logic elimination and
//! constant-specialization.

use std::collections::BTreeMap;

use agequant_cells::PartialEval;

use crate::{Bus, Gate, GateId, NetDriver, NetId, Netlist};

impl Netlist {
    /// Removes gates whose outputs cannot reach any primary output,
    /// returning a new netlist with dense ids. Primary inputs are kept
    /// even when unused (ports are part of the interface).
    ///
    /// Generators occasionally emit helper logic that later stages
    /// leave unconsumed (e.g. prefix nodes whose propagate term is
    /// only needed by pruned levels); synthesis tools sweep those away
    /// and so does this pass — keeping gate counts, power estimates,
    /// and Verilog exports honest.
    #[must_use]
    pub fn pruned(&self) -> Netlist {
        // Mark nets reachable from outputs, walking fanin.
        let mut live_net = vec![false; self.net_count()];
        let mut stack: Vec<NetId> = self.primary_outputs().collect();
        while let Some(net) = stack.pop() {
            if live_net[net.index()] {
                continue;
            }
            live_net[net.index()] = true;
            if let NetDriver::Gate(gate) = self.driver(net) {
                stack.extend(self.gate(gate).inputs.iter().copied());
            }
        }
        // Primary inputs always survive (interface stability).
        for net in self.primary_inputs() {
            live_net[net.index()] = true;
        }
        self.rebuild(|net| live_net[net.index()], |_| None)
    }

    /// Specializes the netlist for inputs tied to constants: gates
    /// whose outputs become constant are folded away and replaced with
    /// constant nets, then dead logic is swept. `tied` maps primary
    /// input nets to their constant values.
    ///
    /// This is the hardware-specialization view of input compression:
    /// the circuit a synthesis tool would produce if the padding zeros
    /// were hard-wired. Useful for area/power what-if studies.
    ///
    /// # Panics
    ///
    /// Panics if a tied net is not a primary input.
    #[must_use]
    pub fn specialized(&self, tied: &BTreeMap<NetId, bool>) -> Netlist {
        for net in tied.keys() {
            assert!(
                matches!(self.driver(*net), NetDriver::PrimaryInput),
                "{net} is not a primary input"
            );
        }
        // Constant propagation (same rules as STA case analysis).
        let mut constants: Vec<Option<bool>> = vec![None; self.net_count()];
        for (idx, _) in (0..self.net_count()).enumerate() {
            let net = NetId::from_index(idx);
            match self.driver(net) {
                NetDriver::PrimaryInput => constants[idx] = tied.get(&net).copied(),
                NetDriver::Constant(v) => constants[idx] = Some(v),
                NetDriver::Gate(_) => {}
            }
        }
        let mut pins: Vec<Option<bool>> = Vec::with_capacity(3);
        for gate in self.gates() {
            pins.clear();
            pins.extend(gate.inputs.iter().map(|n| constants[n.index()]));
            if let PartialEval::Known(v) = gate.kind.partial_eval(&pins) {
                constants[gate.output.index()] = Some(v);
            }
        }
        // Keep gates whose output is not constant; constant nets are
        // re-driven by constant drivers. Then sweep dead logic.
        let specialized = self.rebuild(
            |_| true,
            |net| match self.driver(net) {
                NetDriver::Gate(_) => constants[net.index()],
                NetDriver::PrimaryInput => tied.get(&net).copied(),
                NetDriver::Constant(_) => None, // already constant
            },
        );
        specialized.pruned()
    }

    /// Rebuilds the netlist keeping nets passing `keep` and overriding
    /// drivers where `constant_override` yields a value.
    fn rebuild(
        &self,
        keep: impl Fn(NetId) -> bool,
        constant_override: impl Fn(NetId) -> Option<bool>,
    ) -> Netlist {
        let mut net_map: Vec<Option<NetId>> = vec![None; self.net_count()];
        let mut drivers = Vec::new();
        let alloc = |idx: usize,
                     driver: NetDriver,
                     net_map: &mut Vec<Option<NetId>>,
                     drivers: &mut Vec<NetDriver>| {
            let new = NetId::from_index(drivers.len());
            drivers.push(driver);
            net_map[idx] = Some(new);
            new
        };

        // First pass: primary inputs and constants (stable order).
        for idx in 0..self.net_count() {
            let net = NetId::from_index(idx);
            if !keep(net) {
                continue;
            }
            match (self.driver(net), constant_override(net)) {
                (NetDriver::PrimaryInput, None) => {
                    alloc(idx, NetDriver::PrimaryInput, &mut net_map, &mut drivers);
                }
                (NetDriver::PrimaryInput, Some(v)) | (NetDriver::Gate(_), Some(v)) => {
                    alloc(idx, NetDriver::Constant(v), &mut net_map, &mut drivers);
                }
                (NetDriver::Constant(v), _) => {
                    alloc(idx, NetDriver::Constant(v), &mut net_map, &mut drivers);
                }
                (NetDriver::Gate(_), None) => {} // second pass
            }
        }
        // Second pass: surviving gates in topological order.
        let mut gates = Vec::new();
        for gate in self.gates() {
            let out_idx = gate.output.index();
            let out_net = NetId::from_index(out_idx);
            if !keep(out_net) || net_map[out_idx].is_some() {
                continue; // dead, or folded to a constant above
            }
            let inputs: Vec<NetId> = gate
                .inputs
                .iter()
                .map(|n| net_map[n.index()].expect("fanin allocated before consumer"))
                .collect();
            let gate_id = GateId(u32::try_from(gates.len()).expect("gate count fits u32"));
            let new_out = NetId::from_index(drivers.len());
            drivers.push(NetDriver::Gate(gate_id));
            net_map[out_idx] = Some(new_out);
            gates.push(Gate {
                kind: gate.kind,
                inputs,
                output: new_out,
            });
        }

        let remap_bus = |bus: &Bus| Bus {
            name: bus.name.clone(),
            nets: bus
                .nets
                .iter()
                .map(|n| net_map[n.index()].expect("port nets survive"))
                .collect(),
        };
        let input_buses: Vec<Bus> = self.input_buses().iter().map(remap_bus).collect();
        let output_buses: Vec<Bus> = self.output_buses().iter().map(remap_bus).collect();

        let mut fanouts: Vec<Vec<(GateId, usize)>> = vec![Vec::new(); drivers.len()];
        for (idx, gate) in gates.iter().enumerate() {
            for (pin, &net) in gate.inputs.iter().enumerate() {
                fanouts[net.index()].push((GateId(idx as u32), pin));
            }
        }
        let rebuilt = Netlist {
            name: self.name().to_string(),
            drivers,
            gates,
            input_buses,
            output_buses,
            fanouts,
        };
        // Transformation passes must preserve structural soundness;
        // checked in test/debug builds, free in release.
        debug_assert!(
            rebuilt.verify().is_ok(),
            "netlist transformation broke invariants: {}",
            rebuilt.verify().unwrap_err()
        );
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use agequant_cells::CellKind;

    use crate::adders::{prefix_adder, PrefixStyle};
    use crate::mac::MacCircuit;
    use crate::NetlistBuilder;

    #[test]
    fn pruning_preserves_function() {
        let adder = prefix_adder(8, PrefixStyle::Sklansky);
        let pruned = adder.pruned();
        assert!(pruned.gate_count() <= adder.gate_count());
        for (a, b) in [(0u64, 0u64), (255, 255), (170, 85), (123, 45)] {
            let inputs = BTreeMap::from([("a".to_string(), a), ("b".to_string(), b)]);
            assert_eq!(adder.evaluate(&inputs), pruned.evaluate(&inputs));
            assert!(pruned.evaluate(&inputs).is_ok());
        }
    }

    #[test]
    fn pruning_removes_dangling_logic() {
        let mut b = NetlistBuilder::new("dangle");
        let x = b.input_bus("x", 2);
        let used = b.gate(CellKind::And2, &[x[0], x[1]]);
        let _dead = b.gate(CellKind::Xor2, &[x[0], x[1]]);
        b.output_bus("y", &[used]);
        let n = b.finish();
        assert_eq!(n.gate_count(), 2);
        let p = n.pruned();
        assert_eq!(p.gate_count(), 1);
        assert_eq!(p.input_bus("x").unwrap().width(), 2, "ports survive");
    }

    #[test]
    fn specialization_matches_masked_evaluation() {
        // Hard-wire the top 4 bits of `a` to zero and compare against
        // the original netlist evaluated with those bits zero.
        let mac = MacCircuit::edge_tpu();
        let a_bus = mac.netlist().input_bus("a").unwrap().nets.clone();
        let tied: BTreeMap<_, _> = a_bus[4..].iter().map(|&n| (n, false)).collect();
        let special = mac.netlist().specialized(&tied);
        assert!(special.gate_count() < mac.netlist().gate_count());
        for (a, b, c) in [(15u64, 255u64, 12345u64), (7, 99, 0), (0, 1, 1 << 20)] {
            let inputs = BTreeMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
                ("c".to_string(), c),
            ]);
            assert_eq!(
                special.evaluate(&inputs),
                mac.netlist().evaluate(&inputs),
                "({a}, {b}, {c})"
            );
        }
    }

    #[test]
    fn full_specialization_collapses_to_constants() {
        let mut b = NetlistBuilder::new("all");
        let x = b.input_bus("x", 2);
        let y = b.gate(CellKind::Or2, &[x[0], x[1]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        let tied = BTreeMap::from([(x[0], true), (x[1], false)]);
        let s = n.specialized(&tied);
        assert_eq!(s.gate_count(), 0);
        let out = s.evaluate(&BTreeMap::from([("x".to_string(), 0)])).unwrap();
        assert_eq!(out["y"], 1, "constant-1 output survives folding");
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn tying_internal_net_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input_bus("x", 1);
        let y = b.gate(CellKind::Inv, &[x[0]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        let _ = n.specialized(&BTreeMap::from([(y, false)]));
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use crate::multipliers::{multiplier, MultiplierArch};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Specializing on zeroed MSBs preserves the multiplier
        /// function over the remaining input space.
        #[test]
        fn specialized_multiplier_is_exact(
            zeros in 1usize..4,
            a in 0u64..16,
            b in 0u64..256,
        ) {
            let m = multiplier(8, 8, MultiplierArch::Wallace);
            let a_bus = m.input_bus("a").unwrap().nets.clone();
            let tied: BTreeMap<_, _> =
                a_bus[8 - zeros..].iter().map(|&n| (n, false)).collect();
            let s = m.specialized(&tied);
            let a = a & ((1 << (8 - zeros)) - 1);
            let out = s.evaluate(&BTreeMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
            ])).unwrap();
            prop_assert_eq!(out["p"], a * b);
        }
    }
}
