//! Zero-delay functional evaluation of netlists.

use std::collections::BTreeMap;

use crate::{NetDriver, Netlist};

impl Netlist {
    /// Evaluates the netlist on bus-level integer inputs.
    ///
    /// `inputs` maps input-bus names to values (bit 0 = LSB of the
    /// bus); the result maps output-bus names to values the same way.
    /// Buses wider than 64 bits are unsupported (none of the
    /// generators produce them).
    ///
    /// # Panics
    ///
    /// Panics if an input bus is missing from `inputs`, a value does
    /// not fit its bus, or a bus exceeds 64 bits.
    ///
    /// # Example
    ///
    /// ```
    /// use std::collections::BTreeMap;
    /// use agequant_netlist::adders::ripple_carry;
    ///
    /// let adder = ripple_carry(8);
    /// let out = adder.evaluate(&BTreeMap::from([
    ///     ("a".to_string(), 200),
    ///     ("b".to_string(), 100),
    /// ]));
    /// assert_eq!(out["sum"], 300);
    /// ```
    #[must_use]
    pub fn evaluate(&self, inputs: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
        let mut values = vec![false; self.net_count()];
        for bus in &self.input_buses {
            assert!(bus.width() <= 64, "bus {} wider than 64 bits", bus.name);
            let value = *inputs
                .get(&bus.name)
                .unwrap_or_else(|| panic!("missing value for input bus {}", bus.name));
            if bus.width() < 64 {
                assert!(
                    value < (1u64 << bus.width()),
                    "value {value} does not fit {}-bit bus {}",
                    bus.width(),
                    bus.name
                );
            }
            for (bit, &net) in bus.nets.iter().enumerate() {
                values[net.index()] = (value >> bit) & 1 == 1;
            }
        }
        self.eval_nets(&mut values);
        let mut out = BTreeMap::new();
        for bus in &self.output_buses {
            let mut value = 0u64;
            for (bit, &net) in bus.nets.iter().enumerate() {
                value |= u64::from(values[net.index()]) << bit;
            }
            out.insert(bus.name.clone(), value);
        }
        out
    }

    /// Evaluates all nets given pre-set primary-input values.
    ///
    /// `values` must have one slot per net with the primary inputs
    /// already assigned; constants and gate outputs are filled in.
    /// Exposed for the simulator and power crates, which need net-level
    /// access.
    pub fn eval_nets(&self, values: &mut [bool]) {
        assert_eq!(values.len(), self.net_count(), "values length mismatch");
        for (idx, driver) in self.drivers.iter().enumerate() {
            if let NetDriver::Constant(v) = driver {
                values[idx] = *v;
            }
        }
        let mut pins: Vec<bool> = Vec::with_capacity(3);
        for gate in &self.gates {
            pins.clear();
            pins.extend(gate.inputs.iter().map(|n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval(&pins);
        }
    }

    /// Convenience: evaluate with a single input bus `a` and return the
    /// single output bus value. Panics when the netlist shape differs.
    #[must_use]
    pub fn evaluate_unary(&self, a: u64) -> u64 {
        assert_eq!(self.input_buses.len(), 1, "expected exactly one input bus");
        assert_eq!(
            self.output_buses.len(),
            1,
            "expected exactly one output bus"
        );
        let inputs = BTreeMap::from([(self.input_buses[0].name.clone(), a)]);
        let out = self.evaluate(&inputs);
        out.into_values().next().expect("one output bus")
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use agequant_cells::CellKind;

    use crate::NetlistBuilder;

    #[test]
    fn constants_participate_in_eval() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input_bus("x", 1);
        let one = b.constant(true);
        let y = b.gate(CellKind::And2, &[x[0], one]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        let out = n.evaluate(&BTreeMap::from([("x".to_string(), 1)]));
        assert_eq!(out["y"], 1);
        let out = n.evaluate(&BTreeMap::from([("x".to_string(), 0)]));
        assert_eq!(out["y"], 0);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_bus_panics() {
        let mut b = NetlistBuilder::new("m");
        let x = b.input_bus("x", 1);
        b.output_bus("y", &[x[0]]);
        let n = b.finish();
        let _ = n.evaluate(&BTreeMap::new());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut b = NetlistBuilder::new("o");
        let x = b.input_bus("x", 2);
        b.output_bus("y", &[x[0]]);
        let n = b.finish();
        let _ = n.evaluate(&BTreeMap::from([("x".to_string(), 4)]));
    }
}
