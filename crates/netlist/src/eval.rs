//! Zero-delay functional evaluation of netlists.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::{NetDriver, Netlist};

/// Errors of bus-level netlist evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An input bus was absent from the provided value map.
    MissingBus {
        /// The name of the missing input bus.
        bus: String,
    },
    /// A provided value does not fit its bus width.
    ValueTooWide {
        /// The bus the value was provided for.
        bus: String,
        /// The bus width in bits.
        width: usize,
        /// The offending value.
        value: u64,
    },
    /// A bus exceeds the 64-bit evaluation limit.
    BusTooWide {
        /// The offending bus.
        bus: String,
        /// The bus width in bits.
        width: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingBus { bus } => {
                write!(f, "missing value for input bus {bus}")
            }
            EvalError::ValueTooWide { bus, width, value } => {
                write!(f, "value {value} does not fit {width}-bit bus {bus}")
            }
            EvalError::BusTooWide { bus, width } => {
                write!(
                    f,
                    "bus {bus} is {width} bits wide; evaluation supports at most 64"
                )
            }
        }
    }
}

impl Error for EvalError {}

impl Netlist {
    /// Evaluates the netlist on bus-level integer inputs.
    ///
    /// `inputs` maps input-bus names to values (bit 0 = LSB of the
    /// bus); the result maps output-bus names to values the same way.
    /// Buses wider than 64 bits are unsupported (none of the
    /// generators produce them).
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if an input bus is missing from
    /// `inputs`, a value does not fit its bus, or a bus exceeds 64
    /// bits.
    ///
    /// # Example
    ///
    /// ```
    /// use std::collections::BTreeMap;
    /// use agequant_netlist::adders::ripple_carry;
    ///
    /// let adder = ripple_carry(8);
    /// let out = adder
    ///     .evaluate(&BTreeMap::from([
    ///         ("a".to_string(), 200),
    ///         ("b".to_string(), 100),
    ///     ]))
    ///     .unwrap();
    /// assert_eq!(out["sum"], 300);
    /// ```
    pub fn evaluate(
        &self,
        inputs: &BTreeMap<String, u64>,
    ) -> Result<BTreeMap<String, u64>, EvalError> {
        let mut values = vec![false; self.net_count()];
        for bus in &self.input_buses {
            if bus.width() > 64 {
                return Err(EvalError::BusTooWide {
                    bus: bus.name.clone(),
                    width: bus.width(),
                });
            }
            let value = *inputs.get(&bus.name).ok_or_else(|| EvalError::MissingBus {
                bus: bus.name.clone(),
            })?;
            if bus.width() < 64 && value >= (1u64 << bus.width()) {
                return Err(EvalError::ValueTooWide {
                    bus: bus.name.clone(),
                    width: bus.width(),
                    value,
                });
            }
            for (bit, &net) in bus.nets.iter().enumerate() {
                values[net.index()] = (value >> bit) & 1 == 1;
            }
        }
        self.eval_nets(&mut values);
        let mut out = BTreeMap::new();
        for bus in &self.output_buses {
            let mut value = 0u64;
            for (bit, &net) in bus.nets.iter().enumerate() {
                value |= u64::from(values[net.index()]) << bit;
            }
            out.insert(bus.name.clone(), value);
        }
        Ok(out)
    }

    /// Evaluates all nets given pre-set primary-input values.
    ///
    /// `values` must have one slot per net with the primary inputs
    /// already assigned; constants and gate outputs are filled in.
    /// Exposed for the simulator and power crates, which need net-level
    /// access.
    pub fn eval_nets(&self, values: &mut [bool]) {
        assert_eq!(values.len(), self.net_count(), "values length mismatch");
        for (idx, driver) in self.drivers.iter().enumerate() {
            if let NetDriver::Constant(v) = driver {
                values[idx] = *v;
            }
        }
        let mut pins: Vec<bool> = Vec::with_capacity(3);
        for gate in &self.gates {
            pins.clear();
            pins.extend(gate.inputs.iter().map(|n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval(&pins);
        }
    }

    /// Convenience: evaluate with a single input bus `a` and return the
    /// single output bus value. Panics when the netlist shape differs
    /// (a fixed-shape usage error, not an input-data error).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from [`Netlist::evaluate`].
    pub fn evaluate_unary(&self, a: u64) -> Result<u64, EvalError> {
        assert_eq!(self.input_buses.len(), 1, "expected exactly one input bus");
        assert_eq!(
            self.output_buses.len(),
            1,
            "expected exactly one output bus"
        );
        let inputs = BTreeMap::from([(self.input_buses[0].name.clone(), a)]);
        let out = self.evaluate(&inputs)?;
        Ok(out.into_values().next().expect("one output bus"))
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use agequant_cells::CellKind;

    use crate::NetlistBuilder;

    use super::*;

    #[test]
    fn constants_participate_in_eval() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input_bus("x", 1);
        let one = b.constant(true);
        let y = b.gate(CellKind::And2, &[x[0], one]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        let out = n.evaluate(&BTreeMap::from([("x".to_string(), 1)])).unwrap();
        assert_eq!(out["y"], 1);
        let out = n.evaluate(&BTreeMap::from([("x".to_string(), 0)])).unwrap();
        assert_eq!(out["y"], 0);
    }

    #[test]
    fn missing_bus_is_typed_error() {
        let mut b = NetlistBuilder::new("m");
        let x = b.input_bus("x", 1);
        b.output_bus("y", &[x[0]]);
        let n = b.finish();
        let err = n.evaluate(&BTreeMap::new()).unwrap_err();
        assert_eq!(
            err,
            EvalError::MissingBus {
                bus: "x".to_string()
            }
        );
        assert!(err.to_string().contains("missing value"));
    }

    #[test]
    fn oversized_value_is_typed_error() {
        let mut b = NetlistBuilder::new("o");
        let x = b.input_bus("x", 2);
        b.output_bus("y", &[x[0]]);
        let n = b.finish();
        let err = n
            .evaluate(&BTreeMap::from([("x".to_string(), 4)]))
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::ValueTooWide {
                bus: "x".to_string(),
                width: 2,
                value: 4
            }
        );
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn unary_convenience_propagates_errors() {
        let mut b = NetlistBuilder::new("u");
        let x = b.input_bus("x", 2);
        let y = b.gate(CellKind::And2, &[x[0], x[1]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        assert_eq!(n.evaluate_unary(3).unwrap(), 1);
        assert!(matches!(
            n.evaluate_unary(4),
            Err(EvalError::ValueTooWide { .. })
        ));
    }
}
