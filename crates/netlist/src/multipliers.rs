//! Unsigned multiplier generators: array and Wallace (carry-save) trees.

use serde::{Deserialize, Serialize};

use crate::adders::{add_prefix, band, bus_bits, full_add, Bit, PrefixStyle};
use crate::{NetId, Netlist, NetlistBuilder};

/// Multiplier microarchitectures.
///
/// The paper's DesignWare-based MAC is synthesized for maximum
/// performance; [`MultiplierArch::Wallace`] (carry-save reduction plus
/// a parallel-prefix final adder) is the corresponding structure.
/// [`MultiplierArch::Array`] is the slow, regular baseline the earlier
/// aging-approximation works ([10, 11] in the paper) were restricted to
/// — kept for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiplierArch {
    /// Row-by-row ripple accumulation (deep, small).
    Array,
    /// Carry-save 3:2 reduction tree + prefix final adder (shallow).
    Wallace,
}

impl MultiplierArch {
    /// All architectures, for sweeps.
    pub const ALL: [MultiplierArch; 2] = [MultiplierArch::Array, MultiplierArch::Wallace];

    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MultiplierArch::Array => "array",
            MultiplierArch::Wallace => "wallace",
        }
    }
}

/// Builds the partial-product matrix: `pp[i][j] = a[i] & b[j]`.
fn partial_products(b: &mut NetlistBuilder, a: &[Bit], bb: &[Bit]) -> Vec<Vec<Bit>> {
    a.iter()
        .map(|&ai| bb.iter().map(|&bj| band(b, ai, bj)).collect())
        .collect()
}

/// Multiplies `x` (width *m*) by `y` (width *n*) producing `m + n`
/// product bits, using the selected architecture.
///
/// # Panics
///
/// Panics if either operand is zero-width.
pub fn multiply(
    b: &mut NetlistBuilder,
    x: &[Bit],
    y: &[Bit],
    arch: MultiplierArch,
    final_adder: PrefixStyle,
) -> Vec<Bit> {
    assert!(!x.is_empty() && !y.is_empty(), "zero-width multiplication");
    match arch {
        MultiplierArch::Array => multiply_array(b, x, y),
        MultiplierArch::Wallace => multiply_wallace(b, x, y, final_adder),
    }
}

fn multiply_array(b: &mut NetlistBuilder, x: &[Bit], y: &[Bit]) -> Vec<Bit> {
    let (m, n) = (x.len(), y.len());
    let pp = partial_products(b, x, y);
    // acc[w] is the current partial-sum bit of weight w.
    let mut acc: Vec<Bit> = pp[0].clone(); // weights 0..n-1
    acc.resize(m + n, Bit::ZERO);
    for (i, row) in pp.iter().enumerate().skip(1) {
        // Add row i (weights i..i+n-1) into acc with a ripple chain.
        let mut carry = Bit::ZERO;
        for (j, &p) in row.iter().enumerate() {
            let w = i + j;
            let (s, c) = full_add(b, acc[w], p, carry);
            acc[w] = s;
            carry = c;
        }
        // Propagate the final carry upward.
        let mut w = i + n;
        while w < m + n {
            let (s, c) = full_add(b, acc[w], carry, Bit::ZERO);
            acc[w] = s;
            carry = c;
            if matches!(carry, Bit::Const(false)) {
                break;
            }
            w += 1;
        }
    }
    acc
}

fn multiply_wallace(
    b: &mut NetlistBuilder,
    x: &[Bit],
    y: &[Bit],
    final_adder: PrefixStyle,
) -> Vec<Bit> {
    let (m, n) = (x.len(), y.len());
    let pp = partial_products(b, x, y);
    // columns[w] collects all bits of weight w.
    let mut columns: Vec<Vec<Bit>> = vec![Vec::new(); m + n];
    for (i, row) in pp.iter().enumerate() {
        for (j, &p) in row.iter().enumerate() {
            if !matches!(p, Bit::Const(false)) {
                columns[i + j].push(p);
            }
        }
    }
    // Carry-save reduction: 3:2 compress until every column has ≤ 2 bits.
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<Bit>> = vec![Vec::new(); m + n + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut iter = col.chunks(3);
            for chunk in &mut iter {
                match *chunk {
                    [p, q, r] => {
                        let (s, c) = full_add(b, p, q, r);
                        push_nonzero(&mut next[w], s);
                        push_nonzero(&mut next[w + 1], c);
                    }
                    [p, q] => {
                        let (s, c) = full_add(b, p, q, Bit::ZERO);
                        push_nonzero(&mut next[w], s);
                        push_nonzero(&mut next[w + 1], c);
                    }
                    [p] => next[w].push(p),
                    _ => unreachable!(),
                }
            }
        }
        next.truncate(m + n);
        columns = next;
    }
    // Final two-row addition.
    let row0: Vec<Bit> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(Bit::ZERO))
        .collect();
    let row1: Vec<Bit> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(Bit::ZERO))
        .collect();
    let all_zero = row1.iter().all(|bit| matches!(bit, Bit::Const(false)));
    let mut sum = if all_zero {
        row0
    } else {
        add_prefix(b, &row0, &row1, final_adder)
    };
    sum.truncate(m + n);
    sum
}

fn push_nonzero(col: &mut Vec<Bit>, bit: Bit) {
    if !matches!(bit, Bit::Const(false)) {
        col.push(bit);
    }
}

/// Complete `m × n` multiplier netlist with buses `a` (m bits),
/// `b` (n bits) → `p` (m + n bits).
#[must_use]
pub fn multiplier(m: usize, n: usize, arch: MultiplierArch) -> Netlist {
    let mut b = NetlistBuilder::new(format!("{}_mult{m}x{n}", arch.name()));
    let a_bus = b.input_bus("a", m);
    let b_bus = b.input_bus("b", n);
    let product = multiply(
        &mut b,
        &bus_bits(&a_bus),
        &bus_bits(&b_bus),
        arch,
        PrefixStyle::KoggeStone,
    );
    let nets: Vec<NetId> = product
        .into_iter()
        .map(|bit| bit.into_net(&mut b))
        .collect();
    b.output_bus("p", &nets);
    b.finish()
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn check_mult(netlist: &Netlist, m: usize, n: usize) {
        let cases = [
            (0u64, 0u64),
            (1, 1),
            ((1 << m) - 1, (1 << n) - 1),
            ((1 << m) - 1, 1),
            (1, (1 << n) - 1),
            (0b1011 & ((1 << m) - 1), 0b1101 & ((1 << n) - 1)),
        ];
        for (a, bv) in cases {
            let out = netlist
                .evaluate(&BTreeMap::from([
                    ("a".to_string(), a),
                    ("b".to_string(), bv),
                ]))
                .unwrap();
            assert_eq!(out["p"], a * bv, "{}: {a} * {bv}", netlist.name());
        }
    }

    #[test]
    fn array_multiplier_is_exact() {
        for (m, n) in [(1, 1), (2, 3), (4, 4), (8, 8)] {
            check_mult(&multiplier(m, n, MultiplierArch::Array), m, n);
        }
    }

    #[test]
    fn wallace_multiplier_is_exact() {
        for (m, n) in [(1, 1), (3, 2), (4, 4), (8, 8)] {
            check_mult(&multiplier(m, n, MultiplierArch::Wallace), m, n);
        }
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let w = multiplier(8, 8, MultiplierArch::Wallace).stats();
        let a = multiplier(8, 8, MultiplierArch::Array).stats();
        assert!(
            w.depth < a.depth,
            "wallace depth {} vs array {}",
            w.depth,
            a.depth
        );
    }

    #[test]
    fn eight_bit_multiplier_exhaustive_diagonal() {
        // Full 65536-case exhaustion lives in the integration suite;
        // here a structured diagonal catches carry bugs cheaply.
        let netlist = multiplier(8, 8, MultiplierArch::Wallace);
        for k in 0..=255u64 {
            let out = netlist
                .evaluate(&BTreeMap::from([
                    ("a".to_string(), k),
                    ("b".to_string(), 255 - k),
                ]))
                .unwrap();
            assert_eq!(out["p"], k * (255 - k));
        }
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Both multiplier architectures implement exact unsigned
        /// multiplication at arbitrary (small) widths.
        #[test]
        fn multipliers_are_exact(
            m in 1usize..9,
            n in 1usize..9,
            a in any::<u64>(),
            b in any::<u64>(),
            arch_idx in 0usize..2,
        ) {
            let a = a & ((1 << m) - 1);
            let b = b & ((1 << n) - 1);
            let netlist = multiplier(m, n, MultiplierArch::ALL[arch_idx]);
            let out = netlist.evaluate(&BTreeMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
            ])).unwrap();
            prop_assert_eq!(out["p"], a * b);
        }
    }
}
