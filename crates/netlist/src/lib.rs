//! Gate-level netlists and arithmetic-circuit generators.
//!
//! This crate stands in for the paper's synthesis step (Synopsys Design
//! Compiler + DesignWare, Section 6.1 (3)): it produces the
//! post-synthesis gate-level netlist of the NPU's MAC unit — an 8-bit
//! unsigned multiplier feeding a 22-bit accumulate adder, as in the
//! Edge-TPU-like microarchitecture of Section 4 — built from the
//! standard cells of `agequant-cells`.
//!
//! The generators matter because the whole paper hinges on a structural
//! property: *which timing paths a MAC activates depends on the bit
//! width of its inputs*. Tree multipliers and parallel-prefix adders
//! have exactly that property — zeroing MSBs or LSBs of the inputs
//! deactivates partial-product rows/columns and truncates carry chains.
//! The STA crate exploits this via case analysis.
//!
//! Provided generators:
//!
//! * adders: ripple-carry, and the parallel-prefix family
//!   (Kogge–Stone, Sklansky, Brent–Kung) via [`PrefixStyle`],
//! * multipliers: array and Wallace (carry-save reduction) via
//!   [`MultiplierArch`],
//! * the paper's MAC unit: [`mac::MacCircuit`].
//!
//! # Example
//!
//! ```
//! use agequant_netlist::mac::MacCircuit;
//!
//! let mac = MacCircuit::edge_tpu();
//! // f = (a*b + c) mod 2^22
//! let f = mac.compute(200, 180, 1_000_000);
//! assert_eq!(f, (200 * 180 + 1_000_000) % (1 << 22));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adders;
mod builder;
mod eval;
mod graph;
pub mod mac;
pub mod multipliers;
mod transform;
mod verilog;

pub use adders::PrefixStyle;
pub use builder::NetlistBuilder;
pub use eval::EvalError;
pub use graph::{Bus, Gate, GateId, NetDriver, NetId, Netlist, NetlistStats};
pub use multipliers::MultiplierArch;
