//! Adder generators: ripple-carry and parallel-prefix families.
//!
//! All generators operate on [`Bit`]s — a thin wrapper over nets that
//! constant-folds at construction time, mirroring the constant
//! optimization a synthesis tool performs. Top-level convenience
//! functions produce complete [`Netlist`]s with `a`/`b` input buses and
//! a `sum` output bus (width + 1 bits, MSB = carry out).

use serde::{Deserialize, Serialize};

use agequant_cells::CellKind;

use crate::{NetId, Netlist, NetlistBuilder};

/// A logic value during construction: either a compile-time constant
/// (folded away) or a live net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// A constant that never materializes as a gate input unless needed.
    Const(bool),
    /// A live net.
    Net(NetId),
}

impl Bit {
    /// The constant zero bit.
    pub const ZERO: Bit = Bit::Const(false);

    /// Converts to a real net, materializing a constant tie-off.
    #[must_use]
    pub fn into_net(self, b: &mut NetlistBuilder) -> NetId {
        match self {
            Bit::Const(v) => b.constant(v),
            Bit::Net(n) => n,
        }
    }
}

/// Wraps a bus of nets as bits.
#[must_use]
pub fn bus_bits(nets: &[NetId]) -> Vec<Bit> {
    nets.iter().map(|&n| Bit::Net(n)).collect()
}

/// `x & y` with constant folding.
pub fn band(b: &mut NetlistBuilder, x: Bit, y: Bit) -> Bit {
    match (x, y) {
        (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
        (Bit::Const(true), other) | (other, Bit::Const(true)) => other,
        (Bit::Net(nx), Bit::Net(ny)) => Bit::Net(b.gate(CellKind::And2, &[nx, ny])),
    }
}

/// `x | y` with constant folding.
pub fn bor(b: &mut NetlistBuilder, x: Bit, y: Bit) -> Bit {
    match (x, y) {
        (Bit::Const(true), _) | (_, Bit::Const(true)) => Bit::Const(true),
        (Bit::Const(false), other) | (other, Bit::Const(false)) => other,
        (Bit::Net(nx), Bit::Net(ny)) => Bit::Net(b.gate(CellKind::Or2, &[nx, ny])),
    }
}

/// `x ^ y` with constant folding.
pub fn bxor(b: &mut NetlistBuilder, x: Bit, y: Bit) -> Bit {
    match (x, y) {
        (Bit::Const(vx), Bit::Const(vy)) => Bit::Const(vx ^ vy),
        (Bit::Const(false), other) | (other, Bit::Const(false)) => other,
        (Bit::Const(true), Bit::Net(n)) | (Bit::Net(n), Bit::Const(true)) => {
            Bit::Net(b.gate(CellKind::Inv, &[n]))
        }
        (Bit::Net(nx), Bit::Net(ny)) => Bit::Net(b.gate(CellKind::Xor2, &[nx, ny])),
    }
}

/// Full adder: returns `(sum, carry)` using the XOR3/MAJ3 cell pair,
/// degrading to a half adder (or wires) when inputs are constant.
pub fn full_add(b: &mut NetlistBuilder, x: Bit, y: Bit, z: Bit) -> (Bit, Bit) {
    // Fold any constant input.
    let mut nets = Vec::new();
    let mut consts = 0u32;
    for bit in [x, y, z] {
        match bit {
            Bit::Const(true) => consts += 1,
            Bit::Const(false) => {}
            Bit::Net(n) => nets.push(n),
        }
    }
    match (nets.len(), consts) {
        (0, k) => (Bit::Const(k % 2 == 1), Bit::Const(k >= 2)),
        (1, 0) => (Bit::Net(nets[0]), Bit::Const(false)),
        (1, 1) => (
            Bit::Net(b.gate(CellKind::Inv, &[nets[0]])),
            Bit::Net(nets[0]),
        ),
        (1, 2) => (Bit::Net(nets[0]), Bit::Const(true)),
        (2, 0) => half_add(b, Bit::Net(nets[0]), Bit::Net(nets[1])),
        (2, 1) => {
            // sum = !(x ^ y), carry = x | y
            let s = b.gate(CellKind::Xnor2, &[nets[0], nets[1]]);
            let c = b.gate(CellKind::Or2, &[nets[0], nets[1]]);
            (Bit::Net(s), Bit::Net(c))
        }
        (3, 0) => {
            let s = b.gate(CellKind::Xor3, &[nets[0], nets[1], nets[2]]);
            let c = b.gate(CellKind::Maj3, &[nets[0], nets[1], nets[2]]);
            (Bit::Net(s), Bit::Net(c))
        }
        _ => unreachable!("at most three inputs"),
    }
}

/// Half adder: returns `(sum, carry)`.
pub fn half_add(b: &mut NetlistBuilder, x: Bit, y: Bit) -> (Bit, Bit) {
    let sum = bxor(b, x, y);
    let carry = band(b, x, y);
    (sum, carry)
}

/// Parallel-prefix network topologies.
///
/// All three compute the same carries; they differ in depth, gate
/// count, and wiring — the classic area/delay trade-off knob of
/// synthesis tools (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefixStyle {
    /// Minimal depth, maximal wiring (fastest, biggest).
    KoggeStone,
    /// Minimal depth, high fanout on block roots.
    Sklansky,
    /// Nearly half the nodes of Kogge–Stone, ~2× depth.
    BrentKung,
}

impl PrefixStyle {
    /// All styles, for sweeps.
    pub const ALL: [PrefixStyle; 3] = [
        PrefixStyle::KoggeStone,
        PrefixStyle::Sklansky,
        PrefixStyle::BrentKung,
    ];

    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PrefixStyle::KoggeStone => "kogge-stone",
            PrefixStyle::Sklansky => "sklansky",
            PrefixStyle::BrentKung => "brent-kung",
        }
    }
}

/// A (generate, propagate) pair during prefix construction.
#[derive(Clone, Copy)]
struct Gp {
    g: Bit,
    p: Bit,
}

/// The prefix combine `(G, P) ∘ (G', P') = (G | P·G', P·P')`.
fn combine(b: &mut NetlistBuilder, hi: Gp, lo: Gp) -> Gp {
    let t = band(b, hi.p, lo.g);
    Gp {
        g: bor(b, hi.g, t),
        p: band(b, hi.p, lo.p),
    }
}

/// Builds the carries of `x + y` (both `width` bits) with the chosen
/// prefix network; returns `width + 1` sum bits (MSB = carry out).
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn add_prefix(b: &mut NetlistBuilder, x: &[Bit], y: &[Bit], style: PrefixStyle) -> Vec<Bit> {
    assert_eq!(x.len(), y.len(), "operand width mismatch");
    let n = x.len();
    assert!(n > 0, "zero-width addition");
    let mut nodes: Vec<Gp> = (0..n)
        .map(|i| Gp {
            g: band(b, x[i], y[i]),
            p: bxor(b, x[i], y[i]),
        })
        .collect();
    let p_bits: Vec<Bit> = nodes.iter().map(|gp| gp.p).collect();

    match style {
        PrefixStyle::KoggeStone => {
            let mut d = 1;
            while d < n {
                let snapshot = nodes.clone();
                for i in d..n {
                    nodes[i] = combine(b, snapshot[i], snapshot[i - d]);
                }
                d *= 2;
            }
        }
        PrefixStyle::Sklansky => {
            let mut k = 0;
            while (1usize << k) < n {
                let snapshot = nodes.clone();
                for (i, node) in nodes.iter_mut().enumerate() {
                    if (i >> k) & 1 == 1 {
                        let j = ((i >> k) << k) - 1;
                        *node = combine(b, snapshot[i], snapshot[j]);
                    }
                }
                k += 1;
            }
        }
        PrefixStyle::BrentKung => {
            // Forward (up-sweep) tree.
            let mut d = 1;
            while 2 * d <= n {
                let snapshot = nodes.clone();
                let mut i = 2 * d - 1;
                while i < n {
                    nodes[i] = combine(b, snapshot[i], snapshot[i - d]);
                    i += 2 * d;
                }
                d *= 2;
            }
            // Backward (down-sweep) tree.
            d /= 2;
            while d >= 1 {
                let snapshot = nodes.clone();
                let mut i = 3 * d - 1;
                while i < n {
                    nodes[i] = combine(b, snapshot[i], snapshot[i - d]);
                    i += 2 * d;
                }
                d /= 2;
            }
        }
    }

    // carries: c_0 = 0, c_i = G[0..i-1] = nodes[i-1].g
    let mut sum = Vec::with_capacity(n + 1);
    sum.push(p_bits[0]); // p0 ^ 0
    for i in 1..n {
        sum.push(bxor(b, p_bits[i], nodes[i - 1].g));
    }
    sum.push(nodes[n - 1].g); // carry out
    sum
}

/// Ripple-carry addition over bits; returns `width + 1` sum bits.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn add_ripple(b: &mut NetlistBuilder, x: &[Bit], y: &[Bit]) -> Vec<Bit> {
    assert_eq!(x.len(), y.len(), "operand width mismatch");
    assert!(!x.is_empty(), "zero-width addition");
    let mut sum = Vec::with_capacity(x.len() + 1);
    let mut carry = Bit::ZERO;
    for i in 0..x.len() {
        let (s, c) = full_add(b, x[i], y[i], carry);
        sum.push(s);
        carry = c;
    }
    sum.push(carry);
    sum
}

/// Complete `width`-bit ripple-carry adder netlist with buses
/// `a`, `b` → `sum` (`width + 1` bits).
#[must_use]
pub fn ripple_carry(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("rca{width}"));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let sum = add_ripple(&mut b, &bus_bits(&a_bus), &bus_bits(&b_bus));
    let sum_nets: Vec<NetId> = sum.into_iter().map(|bit| bit.into_net(&mut b)).collect();
    b.output_bus("sum", &sum_nets);
    b.finish()
}

/// Complete `width`-bit parallel-prefix adder netlist with buses
/// `a`, `b` → `sum` (`width + 1` bits).
#[must_use]
pub fn prefix_adder(width: usize, style: PrefixStyle) -> Netlist {
    let mut b = NetlistBuilder::new(format!("{}{width}", style.name()));
    let a_bus = b.input_bus("a", width);
    let b_bus = b.input_bus("b", width);
    let sum = add_prefix(&mut b, &bus_bits(&a_bus), &bus_bits(&b_bus), style);
    let sum_nets: Vec<NetId> = sum.into_iter().map(|bit| bit.into_net(&mut b)).collect();
    b.output_bus("sum", &sum_nets);
    b.finish()
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn check_adder(netlist: &Netlist, width: usize) {
        let cases: Vec<(u64, u64)> = vec![
            (0, 0),
            (1, 1),
            ((1 << width) - 1, 1),
            ((1 << width) - 1, (1 << width) - 1),
            (
                0b1010_1010 & ((1 << width) - 1),
                0b0101_0101 & ((1 << width) - 1),
            ),
        ];
        for (a, bv) in cases {
            let out = netlist
                .evaluate(&BTreeMap::from([
                    ("a".to_string(), a),
                    ("b".to_string(), bv),
                ]))
                .unwrap();
            assert_eq!(out["sum"], a + bv, "{}: {a} + {bv}", netlist.name());
        }
    }

    #[test]
    fn ripple_carry_adds() {
        for width in [1, 2, 4, 8, 22] {
            check_adder(&ripple_carry(width), width);
        }
    }

    #[test]
    fn prefix_adders_add() {
        for style in PrefixStyle::ALL {
            for width in [1, 2, 3, 5, 8, 13, 22, 32] {
                check_adder(&prefix_adder(width, style), width);
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallowest() {
        let ks = prefix_adder(22, PrefixStyle::KoggeStone).stats();
        let bk = prefix_adder(22, PrefixStyle::BrentKung).stats();
        assert!(ks.depth <= bk.depth, "KS {} vs BK {}", ks.depth, bk.depth);
        assert!(ks.gates >= bk.gates, "KS should spend more gates");
    }

    #[test]
    fn prefix_beats_ripple_depth() {
        let ks = prefix_adder(22, PrefixStyle::KoggeStone).stats();
        let rc = ripple_carry(22).stats();
        assert!(ks.depth < rc.depth);
    }

    #[test]
    fn full_add_folds_constants() {
        let mut b = NetlistBuilder::new("fold");
        let x = b.input_bus("x", 1);
        let (s, c) = full_add(&mut b, Bit::Net(x[0]), Bit::ZERO, Bit::ZERO);
        assert_eq!(s, Bit::Net(x[0]));
        assert_eq!(c, Bit::Const(false));
        let (s2, c2) = full_add(&mut b, Bit::Const(true), Bit::Const(true), Bit::Const(true));
        assert_eq!(s2, Bit::Const(true));
        assert_eq!(c2, Bit::Const(true));
    }

    #[test]
    fn bit_ops_fold() {
        let mut b = NetlistBuilder::new("ops");
        let x = b.input_bus("x", 1);
        let xb = Bit::Net(x[0]);
        assert_eq!(band(&mut b, xb, Bit::Const(false)), Bit::Const(false));
        assert_eq!(band(&mut b, xb, Bit::Const(true)), xb);
        assert_eq!(bor(&mut b, xb, Bit::Const(true)), Bit::Const(true));
        assert_eq!(bor(&mut b, xb, Bit::Const(false)), xb);
        assert_eq!(bxor(&mut b, xb, Bit::Const(false)), xb);
        assert_eq!(b.clone().finish().gate_count(), 0, "all folded");
        let inv = bxor(&mut b, xb, Bit::Const(true));
        assert_ne!(inv, xb, "xor with 1 inverts");
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every adder family implements exact unsigned addition.
        #[test]
        fn adders_are_exact(
            width in 1usize..16,
            a in any::<u64>(),
            b in any::<u64>(),
            style_idx in 0usize..4,
        ) {
            let mask = (1u64 << width) - 1;
            let (a, b) = (a & mask, b & mask);
            let netlist = if style_idx == 3 {
                ripple_carry(width)
            } else {
                prefix_adder(width, PrefixStyle::ALL[style_idx])
            };
            let out = netlist.evaluate(&BTreeMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
            ])).unwrap();
            prop_assert_eq!(out["sum"], a + b);
        }
    }
}
