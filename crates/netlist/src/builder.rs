//! Incremental construction of [`Netlist`]s.

use agequant_cells::CellKind;

use crate::{Bus, Gate, GateId, NetDriver, NetId, Netlist};

/// Builds a [`Netlist`] net by net, gate by gate.
///
/// Gates must be created after the nets that feed them, which makes
/// the resulting gate vector topologically ordered by construction —
/// the builder enforces this by only handing out [`NetId`]s for nets
/// that already exist.
///
/// # Example
///
/// ```
/// use agequant_cells::CellKind;
/// use agequant_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("and3");
/// let x = b.input_bus("x", 3);
/// let t = b.gate(CellKind::And2, &[x[0], x[1]]);
/// let y = b.gate(CellKind::And2, &[t, x[2]]);
/// b.output_bus("y", &[y]);
/// let netlist = b.finish();
/// assert_eq!(netlist.gate_count(), 2);
/// ```
#[must_use]
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    drivers: Vec<NetDriver>,
    gates: Vec<Gate>,
    input_buses: Vec<Bus>,
    output_buses: Vec<Bus>,
    const_nets: [Option<NetId>; 2],
}

impl NetlistBuilder {
    /// Starts a new netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            drivers: Vec::new(),
            gates: Vec::new(),
            input_buses: Vec::new(),
            output_buses: Vec::new(),
            const_nets: [None, None],
        }
    }

    fn new_net(&mut self, driver: NetDriver) -> NetId {
        let id = NetId(u32::try_from(self.drivers.len()).expect("net count fits u32"));
        self.drivers.push(driver);
        id
    }

    /// Declares a primary-input bus of `width` bits (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or a bus with this name exists.
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        assert!(width > 0, "bus {name} must have non-zero width");
        assert!(
            self.input_buses.iter().all(|b| b.name != name),
            "duplicate input bus {name}"
        );
        let nets: Vec<NetId> = (0..width)
            .map(|_| self.new_net(NetDriver::PrimaryInput))
            .collect();
        self.input_buses.push(Bus {
            name,
            nets: nets.clone(),
        });
        nets
    }

    /// Returns the (deduplicated) constant-`value` net.
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = usize::from(value);
        if let Some(id) = self.const_nets[slot] {
            return id;
        }
        let id = self.new_net(NetDriver::Constant(value));
        self.const_nets[slot] = Some(id);
        id
    }

    /// Instantiates a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count mismatches the cell arity or an input
    /// net does not exist yet.
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        for &net in inputs {
            assert!(
                net.index() < self.drivers.len(),
                "input net {net} does not exist"
            );
        }
        let gate_id = GateId(u32::try_from(self.gates.len()).expect("gate count fits u32"));
        let output = self.new_net(NetDriver::Gate(gate_id));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Declares a primary-output bus over existing nets (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the bus is empty, duplicates a name, or references a
    /// nonexistent net.
    pub fn output_bus(&mut self, name: impl Into<String>, nets: &[NetId]) {
        let name = name.into();
        assert!(!nets.is_empty(), "output bus {name} must be non-empty");
        assert!(
            self.output_buses.iter().all(|b| b.name != name),
            "duplicate output bus {name}"
        );
        for &net in nets {
            assert!(
                net.index() < self.drivers.len(),
                "output net {net} does not exist"
            );
        }
        self.output_buses.push(Bus {
            name,
            nets: nets.to_vec(),
        });
    }

    /// Finalizes the netlist: computes fanout tables and re-verifies
    /// the topological invariant.
    ///
    /// # Panics
    ///
    /// Panics if a gate reads a net produced by a later gate (cannot
    /// happen through this builder's API; the check guards future
    /// construction paths).
    #[must_use]
    pub fn finish(self) -> Netlist {
        let mut fanouts: Vec<Vec<(GateId, usize)>> = vec![Vec::new(); self.drivers.len()];
        for (idx, gate) in self.gates.iter().enumerate() {
            let gid = GateId(idx as u32);
            for (pin, &net) in gate.inputs.iter().enumerate() {
                if let NetDriver::Gate(producer) = self.drivers[net.index()] {
                    assert!(
                        producer.index() < idx,
                        "gate {gid} reads net {net} produced by later gate {producer}"
                    );
                }
                fanouts[net.index()].push((gid, pin));
            }
        }
        let netlist = Netlist {
            name: self.name,
            drivers: self.drivers,
            gates: self.gates,
            input_buses: self.input_buses,
            output_buses: self.output_buses,
            fanouts,
        };
        // Full structural invariant sweep in test/debug builds; the
        // assert above keeps the cheap topological check in release.
        debug_assert!(
            netlist.verify().is_ok(),
            "NetlistBuilder produced an ill-formed netlist: {}",
            netlist.verify().unwrap_err()
        );
        netlist
    }
}

#[cfg(test)]
mod tests {
    use agequant_cells::CellKind;

    use super::*;

    #[test]
    fn constants_are_deduplicated() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
    }

    #[test]
    fn gate_creates_driven_net() {
        let mut b = NetlistBuilder::new("g");
        let x = b.input_bus("x", 1);
        let y = b.gate(CellKind::Inv, &[x[0]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        assert!(matches!(n.driver(y), NetDriver::Gate(_)));
        assert!(matches!(n.driver(x[0]), NetDriver::PrimaryInput));
    }

    #[test]
    #[should_panic(expected = "duplicate input bus")]
    fn duplicate_bus_rejected() {
        let mut b = NetlistBuilder::new("d");
        let _ = b.input_bus("x", 1);
        let _ = b.input_bus("x", 2);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_mismatch_rejected() {
        let mut b = NetlistBuilder::new("a");
        let x = b.input_bus("x", 1);
        let _ = b.gate(CellKind::And2, &[x[0]]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn dangling_net_rejected() {
        let mut b = NetlistBuilder::new("dangle");
        let _ = b.input_bus("x", 1);
        let _ = b.gate(CellKind::Inv, &[crate::NetId(99)]);
    }
}
