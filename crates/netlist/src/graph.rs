//! The netlist data model: nets, gates, buses.

use std::collections::BTreeMap;
use std::fmt;

use agequant_cells::CellKind;
use serde::{Deserialize, Serialize};

/// Identifier of a net (wire) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The net's index into [`Netlist`] storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index (must be `< net_count()` of the
    /// netlist it is used with).
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(idx: usize) -> NetId {
        NetId(u32::try_from(idx).expect("net index fits u32"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The gate's index into [`Netlist`] storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetDriver {
    /// A primary input of the circuit.
    PrimaryInput,
    /// A tie-off to a constant logic value.
    Constant(bool),
    /// The output of a gate instance.
    Gate(GateId),
}

/// One standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// The cell kind instantiated.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A named group of nets forming a multi-bit port (LSB first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bus {
    /// Port name, e.g. `"a"`.
    pub name: String,
    /// Member nets, index 0 = least significant bit.
    pub nets: Vec<NetId>,
}

impl Bus {
    /// Bit width of the bus.
    #[must_use]
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

/// Gate-count and structure statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total gate instances.
    pub gates: usize,
    /// Total nets (including input and constant nets).
    pub nets: usize,
    /// Logic depth: longest input→output path in gate levels.
    pub depth: usize,
    /// Instances per cell kind.
    pub by_kind: BTreeMap<CellKind, usize>,
}

/// An immutable combinational gate-level netlist.
///
/// Built through [`NetlistBuilder`](crate::NetlistBuilder); gates are
/// stored in topological order (guaranteed by construction and
/// re-verified at build time), so evaluation and timing analysis are
/// single forward passes.
///
/// # Example
///
/// ```
/// use agequant_netlist::adders::ripple_carry;
///
/// let adder = ripple_carry(8);
/// assert_eq!(adder.input_bus("a").unwrap().width(), 8);
/// assert_eq!(adder.output_bus("sum").unwrap().width(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) drivers: Vec<NetDriver>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) input_buses: Vec<Bus>,
    pub(crate) output_buses: Vec<Bus>,
    /// For each net, the gates it fans out to (and the pin index).
    pub(crate) fanouts: Vec<Vec<(GateId, usize)>>,
}

impl Netlist {
    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of gate instances.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The driver of `net`.
    #[must_use]
    pub fn driver(&self, net: NetId) -> NetDriver {
        self.drivers[net.index()]
    }

    /// The gate with the given id.
    #[must_use]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gates (with pin indices) driven by `net`.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[(GateId, usize)] {
        &self.fanouts[net.index()]
    }

    /// Named input buses.
    #[must_use]
    pub fn input_buses(&self) -> &[Bus] {
        &self.input_buses
    }

    /// Named output buses.
    #[must_use]
    pub fn output_buses(&self) -> &[Bus] {
        &self.output_buses
    }

    /// Looks up an input bus by name.
    #[must_use]
    pub fn input_bus(&self, name: &str) -> Option<&Bus> {
        self.input_buses.iter().find(|b| b.name == name)
    }

    /// Looks up an output bus by name.
    #[must_use]
    pub fn output_bus(&self, name: &str) -> Option<&Bus> {
        self.output_buses.iter().find(|b| b.name == name)
    }

    /// All primary-input nets (union of input buses, bus order).
    pub fn primary_inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.input_buses.iter().flat_map(|b| b.nets.iter().copied())
    }

    /// All primary-output nets (union of output buses, bus order).
    pub fn primary_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.output_buses
            .iter()
            .flat_map(|b| b.nets.iter().copied())
    }

    /// Gate-count and depth statistics.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind = BTreeMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind).or_insert(0) += 1;
        }
        // Depth: level(net) = 0 for inputs/constants, gate level =
        // 1 + max(input levels); gates are topologically ordered.
        let mut level = vec![0usize; self.drivers.len()];
        let mut depth = 0;
        for g in &self.gates {
            let l = 1 + g.inputs.iter().map(|n| level[n.index()]).max().unwrap_or(0);
            level[g.output.index()] = l;
            depth = depth.max(l);
        }
        NetlistStats {
            gates: self.gates.len(),
            nets: self.drivers.len(),
            depth,
            by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::adders::ripple_carry;
    use crate::NetlistBuilder;

    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(GateId(7).to_string(), "g7");
    }

    #[test]
    fn stats_count_gates_and_depth() {
        let adder = ripple_carry(4);
        let stats = adder.stats();
        assert_eq!(stats.gates, adder.gate_count());
        assert!(stats.depth >= 4, "ripple carry depth grows with width");
        assert!(stats.by_kind.values().sum::<usize>() == stats.gates);
    }

    #[test]
    fn fanout_is_consistent_with_gates() {
        let adder = ripple_carry(6);
        for (gid, gate) in adder.gates().iter().enumerate() {
            for (pin, net) in gate.inputs.iter().enumerate() {
                assert!(adder.fanout(*net).contains(&(GateId(gid as u32), pin)));
            }
        }
    }

    #[test]
    fn bus_lookup_by_name() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("x", 2);
        let y = b.gate(agequant_cells::CellKind::And2, &[a[0], a[1]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        assert!(n.input_bus("x").is_some());
        assert!(n.input_bus("y").is_none());
        assert!(n.output_bus("y").is_some());
        assert_eq!(n.primary_inputs().count(), 2);
        assert_eq!(n.primary_outputs().count(), 1);
    }
}
