//! The netlist data model: nets, gates, buses.

use std::collections::BTreeMap;
use std::fmt;

use agequant_cells::CellKind;
use serde::{Deserialize, Serialize};

/// Identifier of a net (wire) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The net's index into [`Netlist`] storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index (must be `< net_count()` of the
    /// netlist it is used with).
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(idx: usize) -> NetId {
        NetId(u32::try_from(idx).expect("net index fits u32"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The gate's index into [`Netlist`] storage.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a storage index.
    ///
    /// Useful with [`Netlist::from_parts`] when fabricating driver
    /// tables; ids produced this way are *not* validated against any
    /// netlist.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(idx: usize) -> GateId {
        GateId(u32::try_from(idx).expect("gate index fits u32"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetDriver {
    /// A primary input of the circuit.
    PrimaryInput,
    /// A tie-off to a constant logic value.
    Constant(bool),
    /// The output of a gate instance.
    Gate(GateId),
}

/// One standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// The cell kind instantiated.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A named group of nets forming a multi-bit port (LSB first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bus {
    /// Port name, e.g. `"a"`.
    pub name: String,
    /// Member nets, index 0 = least significant bit.
    pub nets: Vec<NetId>,
}

impl Bus {
    /// Bit width of the bus.
    #[must_use]
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

/// Gate-count and structure statistics of a netlist.
#[must_use]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total gate instances.
    pub gates: usize,
    /// Total nets (including input and constant nets).
    pub nets: usize,
    /// Logic depth: longest input→output path in gate levels.
    pub depth: usize,
    /// Instances per cell kind.
    pub by_kind: BTreeMap<CellKind, usize>,
}

/// An immutable combinational gate-level netlist.
///
/// Built through [`NetlistBuilder`](crate::NetlistBuilder); gates are
/// stored in topological order (guaranteed by construction and
/// re-verified at build time), so evaluation and timing analysis are
/// single forward passes.
///
/// # Example
///
/// ```
/// use agequant_netlist::adders::ripple_carry;
///
/// let adder = ripple_carry(8);
/// assert_eq!(adder.input_bus("a").unwrap().width(), 8);
/// assert_eq!(adder.output_bus("sum").unwrap().width(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) drivers: Vec<NetDriver>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) input_buses: Vec<Bus>,
    pub(crate) output_buses: Vec<Bus>,
    /// For each net, the gates it fans out to (and the pin index).
    pub(crate) fanouts: Vec<Vec<(GateId, usize)>>,
}

impl Netlist {
    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of gate instances.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The driver of `net`.
    #[must_use]
    pub fn driver(&self, net: NetId) -> NetDriver {
        self.drivers[net.index()]
    }

    /// The gate with the given id.
    #[must_use]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gates (with pin indices) driven by `net`.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[(GateId, usize)] {
        &self.fanouts[net.index()]
    }

    /// Named input buses.
    #[must_use]
    pub fn input_buses(&self) -> &[Bus] {
        &self.input_buses
    }

    /// Named output buses.
    #[must_use]
    pub fn output_buses(&self) -> &[Bus] {
        &self.output_buses
    }

    /// Looks up an input bus by name.
    #[must_use]
    pub fn input_bus(&self, name: &str) -> Option<&Bus> {
        self.input_buses.iter().find(|b| b.name == name)
    }

    /// Looks up an output bus by name.
    #[must_use]
    pub fn output_bus(&self, name: &str) -> Option<&Bus> {
        self.output_buses.iter().find(|b| b.name == name)
    }

    /// All primary-input nets (union of input buses, bus order).
    pub fn primary_inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.input_buses.iter().flat_map(|b| b.nets.iter().copied())
    }

    /// All primary-output nets (union of output buses, bus order).
    pub fn primary_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.output_buses
            .iter()
            .flat_map(|b| b.nets.iter().copied())
    }

    /// Assembles a netlist from raw parts **without validation**,
    /// computing the fanout tables (out-of-range net references are
    /// skipped so even corrupt inputs construct).
    ///
    /// This is the entry point for external netlist sources —
    /// deserializers, importers, and the `agequant-lint` test fixtures
    /// — which cannot go through [`NetlistBuilder`]'s
    /// correct-by-construction API. Run [`Netlist::verify`] (cheap
    /// structural invariants) or the `agequant-lint` `NL*` rules over
    /// the result before trusting it: evaluation and timing analysis
    /// assume the invariants hold.
    ///
    /// [`NetlistBuilder`]: crate::NetlistBuilder
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        drivers: Vec<NetDriver>,
        gates: Vec<Gate>,
        input_buses: Vec<Bus>,
        output_buses: Vec<Bus>,
    ) -> Netlist {
        let mut fanouts: Vec<Vec<(GateId, usize)>> = vec![Vec::new(); drivers.len()];
        for (idx, gate) in gates.iter().enumerate() {
            for (pin, &net) in gate.inputs.iter().enumerate() {
                if net.index() < drivers.len() {
                    fanouts[net.index()].push((GateId(idx as u32), pin));
                }
            }
        }
        Netlist {
            name: name.into(),
            drivers,
            gates,
            input_buses,
            output_buses,
            fanouts,
        }
    }

    /// The raw parts of the netlist, cloned: `(drivers, gates,
    /// input buses, output buses)`. The inverse of
    /// [`Netlist::from_parts`]; fanouts are derived, not included.
    #[must_use]
    pub fn to_parts(&self) -> (Vec<NetDriver>, Vec<Gate>, Vec<Bus>, Vec<Bus>) {
        (
            self.drivers.clone(),
            self.gates.clone(),
            self.input_buses.clone(),
            self.output_buses.clone(),
        )
    }

    /// Cheap structural invariant check, reporting the first violation.
    ///
    /// Verifies exactly the invariants construction through
    /// [`NetlistBuilder`](crate::NetlistBuilder) guarantees: all net
    /// references in range, the driver table and gate list mutually
    /// consistent, gates topologically ordered, fanout tables matching
    /// the gate list, and port buses non-empty, uniquely named, and
    /// (for inputs) made of primary-input nets. The `agequant-lint`
    /// crate layers richer, non-failing diagnostics on top; this
    /// method backs the `debug_assert!` hooks in
    /// [`NetlistBuilder::finish`](crate::NetlistBuilder::finish) and
    /// the transformation passes.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        let nets = self.drivers.len();
        for (idx, gate) in self.gates.iter().enumerate() {
            let gid = GateId(idx as u32);
            if gate.inputs.len() != gate.kind.arity() {
                return Err(format!(
                    "gate {gid} ({}): {} inputs, arity {}",
                    gate.kind,
                    gate.inputs.len(),
                    gate.kind.arity()
                ));
            }
            if gate.output.index() >= nets {
                return Err(format!("gate {gid} output {} out of range", gate.output));
            }
            if self.drivers[gate.output.index()] != NetDriver::Gate(gid) {
                return Err(format!(
                    "driver table disagrees with gate {gid} about net {}",
                    gate.output
                ));
            }
            for &input in &gate.inputs {
                if input.index() >= nets {
                    return Err(format!("gate {gid} reads undriven net {input}"));
                }
                if let NetDriver::Gate(producer) = self.drivers[input.index()] {
                    if producer.index() >= idx {
                        return Err(format!(
                            "gate {gid} reads net {input} produced by later gate {producer}"
                        ));
                    }
                }
            }
        }
        for (idx, driver) in self.drivers.iter().enumerate() {
            if let NetDriver::Gate(g) = driver {
                let produced = self
                    .gates
                    .get(g.index())
                    .is_some_and(|gate| gate.output.index() == idx);
                if !produced {
                    return Err(format!(
                        "net {} claims driver {g} which does not produce it",
                        NetId::from_index(idx)
                    ));
                }
            }
        }
        if self.fanouts.len() != nets {
            return Err("fanout table length mismatch".into());
        }
        for (idx, gate) in self.gates.iter().enumerate() {
            let gid = GateId(idx as u32);
            for (pin, &net) in gate.inputs.iter().enumerate() {
                if !self.fanouts[net.index()].contains(&(gid, pin)) {
                    return Err(format!("fanout table misses {net} -> {gid} pin {pin}"));
                }
            }
        }
        let mut names = std::collections::BTreeSet::new();
        for (bus, is_input) in self
            .input_buses
            .iter()
            .map(|b| (b, true))
            .chain(self.output_buses.iter().map(|b| (b, false)))
        {
            if bus.nets.is_empty() {
                return Err(format!("bus {} is empty", bus.name));
            }
            if !names.insert((is_input, bus.name.clone())) {
                return Err(format!("duplicate bus name {}", bus.name));
            }
            for &net in &bus.nets {
                if net.index() >= nets {
                    return Err(format!("bus {} references undriven net {net}", bus.name));
                }
                // Input-port nets are primary inputs, or constants
                // when specialization hard-wired the port bit.
                if is_input && matches!(self.drivers[net.index()], NetDriver::Gate(_)) {
                    return Err(format!(
                        "input bus {} net {net} is driven by a gate",
                        bus.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Gate-count and depth statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind = BTreeMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind).or_insert(0) += 1;
        }
        // Depth: level(net) = 0 for inputs/constants, gate level =
        // 1 + max(input levels); gates are topologically ordered.
        let mut level = vec![0usize; self.drivers.len()];
        let mut depth = 0;
        for g in &self.gates {
            let l = 1 + g.inputs.iter().map(|n| level[n.index()]).max().unwrap_or(0);
            level[g.output.index()] = l;
            depth = depth.max(l);
        }
        NetlistStats {
            gates: self.gates.len(),
            nets: self.drivers.len(),
            depth,
            by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::adders::ripple_carry;
    use crate::NetlistBuilder;

    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(GateId(7).to_string(), "g7");
    }

    #[test]
    fn stats_count_gates_and_depth() {
        let adder = ripple_carry(4);
        let stats = adder.stats();
        assert_eq!(stats.gates, adder.gate_count());
        assert!(stats.depth >= 4, "ripple carry depth grows with width");
        assert!(stats.by_kind.values().sum::<usize>() == stats.gates);
    }

    #[test]
    fn fanout_is_consistent_with_gates() {
        let adder = ripple_carry(6);
        for (gid, gate) in adder.gates().iter().enumerate() {
            for (pin, net) in gate.inputs.iter().enumerate() {
                assert!(adder.fanout(*net).contains(&(GateId(gid as u32), pin)));
            }
        }
    }

    #[test]
    fn verify_accepts_built_netlists() {
        let adder = ripple_carry(8);
        adder.verify().expect("builder output is well-formed");
    }

    #[test]
    fn parts_round_trip_preserves_the_netlist() {
        let adder = ripple_carry(5);
        let (drivers, gates, inputs, outputs) = adder.to_parts();
        let rebuilt = Netlist::from_parts(adder.name(), drivers, gates, inputs, outputs);
        assert_eq!(adder, rebuilt);
        rebuilt.verify().expect("round trip stays well-formed");
    }

    #[test]
    fn verify_rejects_inconsistent_driver_table() {
        let adder = ripple_carry(2);
        let (mut drivers, gates, inputs, outputs) = adder.to_parts();
        // Claim the first gate output is a primary input.
        let out = gates[0].output;
        drivers[out.index()] = NetDriver::PrimaryInput;
        let bad = Netlist::from_parts("bad", drivers, gates, inputs, outputs);
        let err = bad.verify().unwrap_err();
        assert!(err.contains("driver table"), "{err}");
    }

    #[test]
    fn verify_rejects_out_of_range_reads() {
        let adder = ripple_carry(2);
        let (drivers, mut gates, inputs, outputs) = adder.to_parts();
        gates[0].inputs[0] = NetId::from_index(drivers.len() + 7);
        let bad = Netlist::from_parts("bad", drivers, gates, inputs, outputs);
        let err = bad.verify().unwrap_err();
        assert!(err.contains("undriven net"), "{err}");
    }

    #[test]
    fn bus_lookup_by_name() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("x", 2);
        let y = b.gate(agequant_cells::CellKind::And2, &[a[0], a[1]]);
        b.output_bus("y", &[y]);
        let n = b.finish();
        assert!(n.input_bus("x").is_some());
        assert!(n.input_bus("y").is_none());
        assert!(n.output_bus("y").is_some());
        assert_eq!(n.primary_inputs().count(), 2);
        assert_eq!(n.primary_outputs().count(), 1);
    }
}
