//! Provable equivalence of the evaluation engine: the memoized,
//! rayon-parallel paths must return **bit-identical** results to the
//! retained uncached serial reference paths, at every level of the
//! paper's aging sweep.

use agequant_aging::{VthShift, AGING_SWEEP_MV};
use agequant_core::{AgingAwareQuantizer, FlowConfig};
use agequant_nn::NetArch;

fn flow() -> AgingAwareQuantizer {
    AgingAwareQuantizer::new(FlowConfig::edge_tpu_like()).expect("valid config")
}

fn quick_flow(threshold_pct: Option<f64>) -> AgingAwareQuantizer {
    let mut config = FlowConfig::edge_tpu_like();
    config.eval_samples = 20;
    config.calib_samples = 4;
    config.lapq = agequant_quant::LapqRefineConfig::off();
    config.threshold_pct = threshold_pct;
    AgingAwareQuantizer::new(config).expect("valid config")
}

#[test]
fn feasible_points_bit_identical_across_sweep() {
    let flow = flow();
    let clock = flow.fresh_critical_path_ps();
    for &mv in &AGING_SWEEP_MV {
        let shift = VthShift::from_millivolts(mv);
        let parallel = flow.feasible_compressions(shift, clock);
        let serial = flow.feasible_compressions_serial(shift, clock);
        // `FeasiblePoint` holds f64 delays; `==` is exact bit-level
        // agreement, not a tolerance comparison.
        assert_eq!(parallel, serial, "divergence at {mv} mV");
        // A second engine pass (now warm) must also agree.
        assert_eq!(flow.feasible_compressions(shift, clock), serial);
    }
    let stats = flow.engine().stats();
    assert!(stats.library_hits > 0, "cache never hit: {stats:?}");
}

#[test]
fn plans_bit_identical_across_sweep() {
    let flow = flow();
    for &mv in &AGING_SWEEP_MV {
        let shift = VthShift::from_millivolts(mv);
        let cached = flow.compression_for(shift).expect("feasible");
        let serial = flow
            .compression_for_constraint_serial(shift, flow.fresh_critical_path_ps())
            .expect("feasible");
        assert_eq!(cached, serial, "divergence at {mv} mV");
        // The plan-cache hit returns the identical plan.
        assert_eq!(flow.compression_for(shift).expect("feasible"), serial);
    }
    let stats = flow.engine().stats();
    assert!(stats.plan_hits >= AGING_SWEEP_MV.len() as u64, "{stats:?}");
}

#[test]
fn infeasible_constraint_agrees_between_paths() {
    let flow = flow();
    let shift = VthShift::from_millivolts(50.0);
    let parallel = flow.compression_for_constraint(shift, 1.0).unwrap_err();
    let serial = flow
        .compression_for_constraint_serial(shift, 1.0)
        .unwrap_err();
    assert_eq!(parallel, serial);
}

#[test]
fn model_outcomes_bit_identical_without_threshold() {
    let flow = quick_flow(None);
    let model = NetArch::AlexNet.build(flow.config().model_seed);
    for mv in [10.0, 50.0] {
        let plan = flow
            .compression_for(VthShift::from_millivolts(mv))
            .expect("feasible");
        let parallel = flow.select_method(&model, plan).expect("completes");
        let serial = flow.select_method_serial(&model, plan).expect("completes");
        assert_eq!(parallel, serial, "divergence at {mv} mV");
    }
}

#[test]
fn model_outcomes_bit_identical_with_threshold_early_exit() {
    // A generous threshold exercises the serial early exit: the
    // parallel path must truncate its loss list to the same prefix.
    let flow = quick_flow(Some(100.0));
    let model = NetArch::AlexNet.build(flow.config().model_seed);
    let plan = flow
        .compression_for(VthShift::from_millivolts(10.0))
        .expect("feasible");
    let parallel = flow.select_method(&model, plan).expect("threshold met");
    let serial = flow
        .select_method_serial(&model, plan)
        .expect("threshold met");
    assert_eq!(parallel, serial);
    assert_eq!(parallel.method_losses.len(), 1, "early exit reproduced");
}

#[test]
fn threshold_unmet_error_agrees_between_paths() {
    let flow = quick_flow(Some(0.0));
    let model = NetArch::SqueezeNet11.build(flow.config().model_seed);
    let plan = flow
        .compression_for(VthShift::from_millivolts(50.0))
        .expect("feasible");
    let parallel = flow.select_method(&model, plan).unwrap_err();
    let serial = flow.select_method_serial(&model, plan).unwrap_err();
    assert_eq!(parallel, serial);
}

/// The engine's caches are `RwLock`-protected and the engine itself is
/// `Send + Sync`: N threads hammering the same ΔVth grid through one
/// shared engine must produce plans bit-identical to a serial
/// single-threaded reference, and the cache must end up with exactly
/// one characterization per distinct level (no duplicated misses, no
/// torn entries).
#[test]
fn concurrent_threads_bit_identical_to_serial() {
    use std::sync::Arc;

    // Serial reference: a private flow, one thread, uncached path.
    let reference = flow();
    let clock = reference.fresh_critical_path_ps();
    let serial: Vec<_> = AGING_SWEEP_MV
        .iter()
        .map(|&mv| {
            reference
                .compression_for_constraint_serial(VthShift::from_millivolts(mv), clock)
                .expect("feasible")
        })
        .collect();

    // Shared flow: every thread walks the full grid through the same
    // engine, so threads race on library, load, and plan caches.
    let shared = Arc::new(flow());
    let threads: u64 = 8;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let flow = Arc::clone(&shared);
            std::thread::spawn(move || {
                AGING_SWEEP_MV
                    .iter()
                    .map(|&mv| {
                        flow.compression_for(VthShift::from_millivolts(mv))
                            .expect("feasible")
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        let plans = handle.join().expect("worker thread completes");
        assert_eq!(plans, serial, "concurrent plans diverge from serial");
    }

    // Double-checked locking collapses racing library misses: each
    // sweep level is characterized exactly once no matter how many
    // threads race on it. Plan lookups are check-then-store, so racing
    // threads may both record a miss for the same key, but every
    // lookup is accounted for and at least one miss per level is real.
    let stats = shared.engine().stats();
    assert_eq!(
        stats.library_misses,
        AGING_SWEEP_MV.len() as u64,
        "{stats:?}"
    );
    let len = AGING_SWEEP_MV.len() as u64;
    assert_eq!(
        stats.plan_hits + stats.plan_misses,
        threads * len,
        "{stats:?}"
    );
    assert!(stats.plan_misses >= len, "{stats:?}");
}

/// Two degradation models sharing one engine must never share cache
/// entries: every cache key carries the model's `model_key`, and the
/// hit/miss counters are kept per model. This is the satellite
/// guarantee behind the per-model `/metrics` series and
/// `FleetSummary` split.
#[test]
fn models_share_an_engine_but_never_cache_entries() {
    use std::sync::Arc;

    use agequant_aging::{ModelSpec, TechProfile};
    use agequant_core::EvalEngine;

    let config = FlowConfig::edge_tpu_like();
    let engine = Arc::new(EvalEngine::new(config.process.clone()));
    let nbti = AgingAwareQuantizer::with_engine(config.clone(), Arc::clone(&engine))
        .expect("valid config");
    let mut hci_config = config;
    hci_config.model = Some(ModelSpec::hci(TechProfile::INTEL14NM, 1.0));
    let hci =
        AgingAwareQuantizer::with_engine(hci_config, Arc::clone(&engine)).expect("valid config");
    assert_eq!(nbti.model_key(), "nbti");
    assert_eq!(hci.model_key(), "hci");

    for &mv in &AGING_SWEEP_MV {
        let shift = VthShift::from_millivolts(mv);
        let a = nbti.compression_for(shift).expect("feasible");
        let b = hci.compression_for(shift).expect("feasible");
        // Both models run the paper's 14 nm profile, so their delay
        // deratings — and therefore the plans — agree; what must NOT
        // be shared is the cache traffic that produced them.
        assert_eq!(a, b, "same profile must plan identically at {mv} mV");
    }

    let by_model = engine.stats_by_model();
    assert_eq!(
        by_model.keys().cloned().collect::<Vec<_>>(),
        ["hci", "nbti"],
        "exactly the two models' counters exist"
    );
    let len = AGING_SWEEP_MV.len() as u64;
    for key in ["nbti", "hci"] {
        let stats = by_model[key];
        // Each model characterized every sweep level itself: no entry
        // was borrowed from the other model's cache.
        assert_eq!(stats.library_misses, len, "{key}: {stats:?}");
        assert_eq!(stats.plan_misses, len, "{key}: {stats:?}");
        assert_eq!(stats.plan_hits, 0, "{key}: {stats:?}");
    }
    // The aggregate view is exactly the sum of the two models.
    let total = engine.stats();
    assert_eq!(total.library_misses, 2 * len);
    assert_eq!(total.plan_misses, 2 * len);
}

/// Regression pin for the ±0.5 near-tie band of Algorithm 1's plan
/// selection: among feasible points within +0.5 of the minimal norm,
/// the balanced compression wins, then the smaller α, then the faster
/// padding. These selections are observable behavior (Table 2) — a
/// change to the band logic must show up here, not silently reshuffle
/// the paper's reproduction.
#[test]
fn near_tie_band_selection_is_pinned() {
    let flow = flow();
    let expect: [(f64, u8, u8, &str); 5] = [
        // At 10 mV the minimal-norm feasible point is the unbalanced
        // (1, 3): no balanced point lies within the +0.5 band below
        // √10, so the band falls through to the norm winner.
        (10.0, 1, 3, "MSB"),
        // From 20 mV on the band picks balanced (α, α) points.
        (20.0, 3, 3, "MSB"),
        (30.0, 3, 3, "MSB"),
        (40.0, 4, 4, "MSB"),
        (50.0, 4, 4, "MSB"),
    ];
    for (mv, alpha, beta, padding) in expect {
        let plan = flow
            .compression_for(VthShift::from_millivolts(mv))
            .expect("feasible");
        assert_eq!(
            (
                plan.compression.alpha(),
                plan.compression.beta(),
                plan.padding.name()
            ),
            (alpha, beta, padding),
            "selection changed at {mv} mV (got ({}, {}) {})",
            plan.compression.alpha(),
            plan.compression.beta(),
            plan.padding.name()
        );
    }
}
