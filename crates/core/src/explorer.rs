//! Design-space exploration over MAC microarchitectures.
//!
//! The paper fixes one microarchitecture; a designer adopting the
//! technique needs to know how the choice of multiplier/adder family
//! interacts with it: fresh speed, compression headroom, and the
//! end-of-life plan. [`explore_macs`] sweeps every generator
//! combination and scores each against the aging scenario.

use agequant_aging::VthShift;
use agequant_netlist::mac::MacGeometry;
use agequant_netlist::{MultiplierArch, PrefixStyle};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{AgingAwareQuantizer, FlowConfig, MacSpec};

/// One explored design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The microarchitecture.
    pub spec: MacSpec,
    /// Gate count of the synthesized MAC.
    pub gates: usize,
    /// Fresh critical path, ps (the design's clock).
    pub fresh_cp_ps: f64,
    /// End-of-life `(α, β)` plan, or `None` if the technique cannot
    /// rescue this design at end of life.
    pub eol_plan: Option<(u8, u8)>,
    /// Total operand bits the EOL plan removes (lower is better).
    pub eol_bits_removed: Option<u8>,
    /// The guardband this design would otherwise need (fraction).
    pub guardband: f64,
}

impl DesignPoint {
    /// A composite figure of merit: fresh delay × (1 + EOL bits
    /// removed / 16), infinity when the design is unrescuable.
    /// Rewards fast designs that need little late-life compression.
    #[must_use]
    pub fn figure_of_merit(&self) -> f64 {
        match self.eol_bits_removed {
            Some(bits) => self.fresh_cp_ps * (1.0 + f64::from(bits) / 16.0),
            None => f64::INFINITY,
        }
    }
}

/// Sweeps all multiplier × adder × accumulator combinations of the
/// generators for `geometry`, scoring each under `base`'s process and
/// scenario. Results are sorted by [`DesignPoint::figure_of_merit`].
///
/// The independent design points (synthesis + fresh STA + EOL grid
/// scan each) fan out with rayon; the pre-sort order is the same
/// multiplier-outer/accumulator-inner sequence the serial loop
/// produced, and the sort is stable, so the ranking is deterministic.
///
/// # Errors
///
/// Propagates configuration errors (an unrescuable design is *not* an
/// error — it appears with `eol_plan: None`).
pub fn explore_macs(
    base: &FlowConfig,
    geometry: MacGeometry,
) -> Result<Vec<DesignPoint>, crate::FlowError> {
    let eol = VthShift::from_volts(agequant_aging::NbtiModel::EOL_SHIFT_V);
    let mut specs = Vec::new();
    for arch in MultiplierArch::ALL {
        for mult_adder in PrefixStyle::ALL {
            for acc_adder in PrefixStyle::ALL {
                specs.push(MacSpec {
                    geometry,
                    arch,
                    mult_adder,
                    acc_adder,
                });
            }
        }
    }
    let mut points = specs
        .par_iter()
        .map(|&spec| {
            let mut config = base.clone();
            config.mac = spec;
            let flow = AgingAwareQuantizer::new(config)?;
            let plan = flow.compression_for(eol).ok();
            Ok(DesignPoint {
                spec: flow.config().mac,
                gates: flow.mac().netlist().gate_count(),
                fresh_cp_ps: flow.fresh_critical_path_ps(),
                eol_plan: plan.map(|p| (p.compression.alpha(), p.compression.beta())),
                eol_bits_removed: plan.map(|p| p.compression.alpha() + p.compression.beta()),
                guardband: flow.config().scenario.required_guardband(),
            })
        })
        .collect::<Vec<Result<DesignPoint, crate::FlowError>>>()
        .into_iter()
        .collect::<Result<Vec<DesignPoint>, crate::FlowError>>()?;
    points.sort_by(|a, b| {
        a.figure_of_merit()
            .partial_cmp(&b.figure_of_merit())
            .expect("finite or infinite, never NaN")
    });
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_covers_the_full_grid_and_ranks() {
        let config = FlowConfig::edge_tpu_like();
        let points = explore_macs(&config, MacGeometry::EDGE_TPU).expect("explores");
        assert_eq!(points.len(), 2 * 3 * 3);
        // Sorted by figure of merit.
        for pair in points.windows(2) {
            assert!(pair[0].figure_of_merit() <= pair[1].figure_of_merit());
        }
        // Wallace variants must beat array variants on merit (faster
        // fresh clock dominates).
        let best = &points[0];
        assert_eq!(best.spec.arch, MultiplierArch::Wallace);
        // Every point carries a consistent guardband.
        for p in &points {
            assert!((p.guardband - 0.23).abs() < 1e-9);
            assert!(p.gates > 100);
        }
    }

    #[test]
    fn merit_penalizes_heavy_compression() {
        let a = DesignPoint {
            spec: MacSpec::edge_tpu(),
            gates: 1,
            fresh_cp_ps: 100.0,
            eol_plan: Some((2, 2)),
            eol_bits_removed: Some(4),
            guardband: 0.23,
        };
        let mut b = a.clone();
        b.eol_plan = Some((4, 4));
        b.eol_bits_removed = Some(8);
        assert!(a.figure_of_merit() < b.figure_of_merit());
        let mut c = a.clone();
        c.eol_plan = None;
        c.eol_bits_removed = None;
        assert_eq!(c.figure_of_merit(), f64::INFINITY);
    }
}
