//! The flow-level error type.

use std::error::Error;
use std::fmt;

use agequant_aging::VthShift;

/// Errors of the aging-aware quantization flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// No `(α, β)` compression meets the fresh timing constraint at
    /// the given aging level (the MAC cannot be rescued by input
    /// compression alone).
    NoFeasibleCompression {
        /// The aging level analyzed.
        shift: VthShift,
        /// The timing constraint that could not be met, ps.
        constraint_ps: f64,
    },
    /// Every quantization method exceeded the user's accuracy-loss
    /// threshold (Algorithm 1, line 9).
    ThresholdUnmet {
        /// The best loss achieved, percent.
        best_loss_pct: f64,
        /// The requested threshold, percent.
        threshold_pct: f64,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidConfig(msg) => write!(f, "invalid flow configuration: {msg}"),
            FlowError::NoFeasibleCompression {
                shift,
                constraint_ps,
            } => write!(
                f,
                "no input compression meets {constraint_ps:.1} ps at {shift}"
            ),
            FlowError::ThresholdUnmet {
                best_loss_pct,
                threshold_pct,
            } => write!(
                f,
                "best accuracy loss {best_loss_pct:.2}% exceeds threshold {threshold_pct:.2}%"
            ),
        }
    }
}

impl Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FlowError::NoFeasibleCompression {
            shift: VthShift::from_millivolts(50.0),
            constraint_ps: 123.4,
        };
        let msg = e.to_string();
        assert!(msg.contains("123.4"));
        assert!(msg.contains("50mV"));
        assert!(FlowError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
    }
}
