//! Aging-aware quantization for anti-aging NPUs — the paper's primary
//! contribution (Algorithm 1) and its evaluation flows.
//!
//! The flow (Fig. 3 of the paper) spans every layer of this workspace:
//!
//! 1. **Device** — `agequant-aging` models ΔVth kinetics and delay
//!    derating; `agequant-cells` characterizes aged cell libraries.
//! 2. **Circuit** — `agequant-netlist` synthesizes the Edge-TPU-like
//!    MAC; `agequant-sta` finds, per aging level, every `(α, β)` input
//!    compression (under MSB and LSB padding) whose *aged* critical
//!    path still meets the *fresh* clock — no guardband, no timing
//!    errors.
//! 3. **System** — `agequant-quant` quantizes the network to
//!    `W(8−β) A(8−α) bias(16−α−β)` with each of the five library
//!    methods; the best-accuracy method wins (or the first one meeting
//!    a user threshold).
//!
//! Entry point: [`AgingAwareQuantizer`]. Evaluation helpers reproduce
//! each figure: [`lifetime::DelayTrajectory`] (Fig. 4a),
//! [`lifetime::AccuracyTrajectory`] (Fig. 4b), [`energy::EnergyComparison`]
//! (Fig. 5), and [`surrogate`] (§6.2's Pearson ranking study).
//!
//! All per-aging-level work runs on the shared [`EvalEngine`]:
//! characterized libraries, STA load vectors, and compression plans
//! are memoized per quantized ΔVth, and the independent fan-outs (the
//! `(α, β) × Padding` grid, the per-method quantization runs, the
//! design-space and lifetime sweeps) are parallelized with rayon.
//! Results are bit-identical to the retained uncached serial reference
//! paths (`*_serial` methods); `tests/equivalence.rs` enforces this.
//!
//! # Example
//!
//! ```
//! use agequant_aging::VthShift;
//! use agequant_core::{AgingAwareQuantizer, FlowConfig};
//!
//! # fn main() -> Result<(), agequant_core::FlowError> {
//! let flow = AgingAwareQuantizer::new(FlowConfig::edge_tpu_like())?;
//! let plan = flow.compression_for(VthShift::from_millivolts(30.0))?;
//! assert!(!plan.compression.is_uncompressed());
//! assert!(plan.compressed_delay_ps <= flow.fresh_critical_path_ps());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod config;
pub mod energy;
mod engine;
mod error;
pub mod explorer;
pub mod lifetime;
pub mod report;
pub mod surrogate;

pub use algorithm::{AgingAwareQuantizer, CompressionPlan, FeasiblePoint, ModelOutcome};
pub use config::{FlowConfig, MacSpec};
pub use engine::{CacheStats, EvalEngine};
pub use error::FlowError;
pub use explorer::{explore_macs, DesignPoint};
pub use report::LifetimeReport;
