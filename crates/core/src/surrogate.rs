//! Section 6.2's surrogate-model validation: does the Euclidean norm
//! `√(α² + β²)` rank compressions like their measured accuracy loss?

use agequant_nn::{accuracy_loss_pct, ExactExecutor, NetArch, SyntheticDataset};
use agequant_quant::{quantize_model_with, BitWidths, QuantMethod};
use agequant_sta::Compression;
use serde::{Deserialize, Serialize};

use crate::AgingAwareQuantizer;

/// The Pearson rank-correlation study of one (network, method) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateStudy {
    /// Network name.
    pub network: String,
    /// Quantization method.
    pub method: QuantMethod,
    /// The compressions evaluated.
    pub compressions: Vec<Compression>,
    /// Measured accuracy loss per compression, percent.
    pub losses_pct: Vec<f64>,
    /// Pearson correlation between the loss ranking and the
    /// Euclidean-norm ranking.
    pub rank_correlation: f64,
}

/// Runs the §6.2 experiment for one network and method over
/// `(α, β) ∈ [0, max]²` (the paper uses `[0, 4]²`).
///
/// # Panics
///
/// Panics if the grid is empty after validation.
#[must_use]
pub fn study(
    flow: &AgingAwareQuantizer,
    arch: NetArch,
    method: QuantMethod,
    grid_max: u8,
    eval_samples: usize,
) -> SurrogateStudy {
    let model = arch.build(flow.config().model_seed);
    let eval = SyntheticDataset::generate(eval_samples, flow.config().data_seed ^ 1);
    let calib = SyntheticDataset::generate(flow.config().calib_samples, flow.config().data_seed);
    let fp32 = model.predict_all(&ExactExecutor, eval.images());

    let mut compressions = Vec::new();
    let mut losses = Vec::new();
    for compression in Compression::grid(grid_max) {
        if compression.validate(flow.mac().geometry()).is_err() {
            continue;
        }
        let bits = BitWidths::for_compression(compression.alpha(), compression.beta());
        let quantized = quantize_model_with(&model, method, bits, &calib, &flow.config().lapq);
        let preds = model.predict_all(&quantized, eval.images());
        compressions.push(compression);
        losses.push(accuracy_loss_pct(&fp32, &preds));
    }
    assert!(!compressions.is_empty(), "empty compression grid");

    let norm_ranks = ranks(
        &compressions
            .iter()
            .map(|c| c.magnitude())
            .collect::<Vec<_>>(),
    );
    let loss_ranks = ranks(&losses);
    let rank_correlation = pearson(&norm_ranks, &loss_ranks);
    SurrogateStudy {
        network: arch.name().to_string(),
        method,
        compressions,
        losses_pct: losses,
        rank_correlation,
    }
}

/// Fractional ranks with tie averaging (the usual Spearman-ρ ranks).
#[must_use]
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// The Pearson correlation coefficient of two equal-length samples.
///
/// # Panics
///
/// Panics on length mismatch or fewer than two points.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sample length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use crate::{AgingAwareQuantizer, FlowConfig};

    use super::*;

    #[test]
    fn pearson_reference_cases() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn surrogate_correlates_strongly() {
        // The paper reports 0.84 average (0.71–0.92). One quick
        // (network, method) study over [0, 3]² should land in a
        // strongly positive band.
        let mut config = FlowConfig::edge_tpu_like();
        config.lapq = agequant_quant::LapqRefineConfig::off();
        let flow = AgingAwareQuantizer::new(config).unwrap();
        let s = study(&flow, NetArch::AlexNet, QuantMethod::Aciq, 3, 30);
        assert_eq!(s.compressions.len(), 16);
        assert!(
            s.rank_correlation > 0.5,
            "rank correlation {}",
            s.rank_correlation
        );
    }
}
