//! Whole-lifetime markdown report generation.

use std::fmt::Write as _;

use agequant_nn::NetArch;

use crate::energy::EnergyComparison;
use crate::lifetime::{AccuracyTrajectory, DelayTrajectory};
use crate::{AgingAwareQuantizer, FlowError};

/// A complete lifetime assessment: delay, accuracy, and energy
/// trajectories for one flow configuration, rendered as markdown.
///
/// This is the artifact a deployment review would consume — one
/// document answering "what happens to this NPU over ten years with
/// aging-aware quantization enabled".
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// The delay picture (Fig. 4a / Table 2 data).
    pub delay: DelayTrajectory,
    /// The accuracy picture (Fig. 4b / Table 1 data).
    pub accuracy: AccuracyTrajectory,
    /// The energy picture (Fig. 5 data).
    pub energy: EnergyComparison,
}

impl LifetimeReport {
    /// Runs the three evaluation flows for the given networks.
    ///
    /// # Errors
    ///
    /// Propagates flow errors.
    pub fn compute(
        flow: &AgingAwareQuantizer,
        archs: &[NetArch],
        energy_samples: usize,
    ) -> Result<Self, FlowError> {
        Ok(LifetimeReport {
            delay: DelayTrajectory::compute(flow)?,
            accuracy: AccuracyTrajectory::compute(flow, archs)?,
            energy: EnergyComparison::compute(flow, energy_samples)?,
        })
    }

    /// Renders the report as markdown.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# NPU lifetime report (aging-aware quantization)\n");

        let _ = writeln!(md, "## Timing\n");
        let _ = writeln!(md, "| ΔVth | baseline delay | ours | (α, β) | padding |");
        let _ = writeln!(md, "|---|---|---|---|---|");
        for p in &self.delay.points {
            let _ = writeln!(
                md,
                "| {} | {:.3} | {:.3} | ({}, {}) | {} |",
                p.shift, p.baseline_norm, p.ours_norm, p.alpha, p.beta, p.padding
            );
        }
        let _ = writeln!(
            md,
            "\nEliminated guardband: **{:.1}%**; compressed delay ≤ fresh for \
             the whole lifetime: **{}**.\n",
            100.0 * self.delay.guardband_gain(),
            self.delay.ours_never_degrades()
        );

        let _ = writeln!(md, "## Accuracy\n");
        let _ = writeln!(md, "| ΔVth | min | median | max | mean loss % |");
        let _ = writeln!(md, "|---|---|---|---|---|");
        let means = self.accuracy.mean_losses();
        for (level, shift) in self.accuracy.shifts.iter().enumerate() {
            let [min, _, med, _, max] = self.accuracy.box_stats_at(level);
            let _ = writeln!(
                md,
                "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
                shift, min, med, max, means[level]
            );
        }
        let _ = writeln!(md);
        for (name, outcomes) in &self.accuracy.outcomes {
            let cells: Vec<String> = outcomes
                .iter()
                .map(|o| format!("{:.1}%/{}", o.accuracy_loss_pct, o.method.tag()))
                .collect();
            let _ = writeln!(md, "- **{name}**: {}", cells.join(", "));
        }

        let _ = writeln!(md, "\n## Energy\n");
        let _ = writeln!(md, "| ΔVth | normalized energy |");
        let _ = writeln!(md, "|---|---|");
        for p in &self.energy.points {
            let _ = writeln!(md, "| {} | {:.3} |", p.shift, p.normalized());
        }
        let _ = writeln!(
            md,
            "\nMean aged energy reduction: **{:.1}%**.",
            100.0 * (1.0 - self.energy.mean_aged_normalized())
        );
        md
    }
}

#[cfg(test)]
mod tests {
    use agequant_quant::LapqRefineConfig;

    use crate::FlowConfig;

    use super::*;

    #[test]
    fn report_renders_all_sections() {
        let mut config = FlowConfig::edge_tpu_like();
        config.eval_samples = 16;
        config.calib_samples = 4;
        config.lapq = LapqRefineConfig::off();
        let flow = AgingAwareQuantizer::new(config).expect("valid");
        let report = LifetimeReport::compute(&flow, &[NetArch::AlexNet], 100).expect("completes");
        let md = report.render_markdown();
        assert!(md.contains("# NPU lifetime report"));
        assert!(md.contains("## Timing"));
        assert!(md.contains("## Accuracy"));
        assert!(md.contains("## Energy"));
        assert!(md.contains("Alexnet"));
        assert!(md.contains("Eliminated guardband"));
        // Markdown tables are well-formed (same pipe count per block
        // line is too strict; check headers exist).
        assert!(md.contains("| ΔVth | baseline delay |"));
    }
}
