//! The shared evaluation engine: memoized aging characterization.
//!
//! Every per-aging-level entry point of the flow needs the same two
//! expensive artifacts for a given ΔVth: the characterized
//! [`CellLibrary`] and the per-net STA load vector of the MAC under
//! analysis. The seed recomputed both on every call —
//! `baseline_delay_ps`, `feasible_compressions`, the lifetime
//! trajectories, and the figure/table binaries each re-ran
//! [`ProcessLibrary::characterize`] for shifts they had already seen.
//!
//! [`EvalEngine`] memoizes three layers, keyed on the pair of a
//! degradation model's stable [`model_key`] and a *quantized* ΔVth
//! (rounded to the nearest nanovolt, far below any physically
//! meaningful difference, so float noise cannot split cache entries):
//!
//! 1. **Libraries** — `(model_key, ΔVth) → Arc<CellLibrary>` (the
//!    SiliconSmart step under that model's delay derating).
//! 2. **Load vectors** — `(model_key, ΔVth) → Arc<Vec<f64>>` for the
//!    engine's one netlist, reused across every case-analysis STA run
//!    at that level via [`Sta::with_loads`].
//! 3. **Compression plans** — `(model_key, ΔVth, constraint) →
//!    CompressionPlan`, so the `archs × levels` sweeps of the accuracy
//!    trajectory run the full `(α, β) × Padding` grid once per level
//!    instead of once per network.
//!
//! The model key enters every cache key because two models with
//! different technology profiles derate the same ΔVth to different
//! delays: one engine can serve heterogeneous models concurrently (the
//! decision server does exactly that) and entries are never shared
//! across models. Hit/miss counters are likewise kept per model —
//! [`EvalEngine::stats`] aggregates them, [`EvalEngine::stats_by_model`]
//! exposes the split for `/metrics` and fleet reports.
//!
//! Memoization is transparent: a cache hit returns the bit-identical
//! value the miss path would compute (the equivalence suite in
//! `crates/core/tests/equivalence.rs` pins this against the uncached
//! serial reference paths). The engine is `Send + Sync` (asserted by
//! a compile-time check below): each cache sits behind an [`RwLock`],
//! so the hot path — concurrent readers hitting warm entries, which is
//! what a decision server does all day — never serializes; only a miss
//! takes the write lock, and the hit/miss counters are plain atomics a
//! `/metrics` scrape can snapshot without touching any lock.
//!
//! One engine serves exactly one netlist (the quantizer's MAC): load
//! vectors and plans are circuit-dependent. [`AgingAwareQuantizer`]
//! creates its own engine at construction and shares it across clones;
//! [`AgingAwareQuantizer::with_engine`] lets several quantizers with
//! different models share one engine.
//!
//! [`AgingAwareQuantizer`]: crate::AgingAwareQuantizer
//! [`AgingAwareQuantizer::with_engine`]: crate::AgingAwareQuantizer::with_engine
//! [`ProcessLibrary::characterize`]: agequant_cells::ProcessLibrary::characterize
//! [`Sta::with_loads`]: agequant_sta::Sta::with_loads
//! [`model_key`]: agequant_aging::DegradationModel::model_key

use agequant_check::sync::atomic::{AtomicU64, Ordering};
use agequant_check::sync::{Arc, RwLock};
use std::collections::{BTreeMap, HashMap};

use agequant_aging::{DelayDerating, VthShift};
use agequant_cells::{CellLibrary, ProcessLibrary};
use agequant_netlist::Netlist;
use agequant_sta::Sta;

use crate::CompressionPlan;

/// A library/load cache key: model identity plus quantized shift.
type ModelShiftKey = (String, i64);

/// A plan-cache key: model identity, quantized shift, constraint bits.
type PlanKey = (String, i64, u64);

/// Cache-effectiveness counters, for benches and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Library lookups served from the cache.
    pub library_hits: u64,
    /// Library lookups that ran `characterize`.
    pub library_misses: u64,
    /// Plan lookups served from the cache.
    pub plan_hits: u64,
    /// Plan lookups that ran the full grid scan.
    pub plan_misses: u64,
}

impl CacheStats {
    /// Fraction of library lookups served from the cache, or 0 when
    /// no library lookup has happened yet.
    #[must_use]
    pub fn library_hit_rate(&self) -> f64 {
        Self::rate(self.library_hits, self.library_misses)
    }

    /// Fraction of plan lookups served from the cache, or 0 when no
    /// plan lookup has happened yet.
    #[must_use]
    pub fn plan_hit_rate(&self) -> f64 {
        Self::rate(self.plan_hits, self.plan_misses)
    }

    /// Overall hit rate across the plan and library caches combined,
    /// or 0 when the engine has served no lookup at all.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        Self::rate(
            self.library_hits + self.plan_hits,
            self.library_misses + self.plan_misses,
        )
    }

    #[allow(clippy::cast_precision_loss)]
    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Per-model hit/miss atomics: one bundle per distinct `model_key`.
#[derive(Debug, Default)]
struct ModelCounters {
    library_hits: AtomicU64,
    library_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

impl ModelCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            library_hits: self.library_hits.load(Ordering::Relaxed),
            library_misses: self.library_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }
}

/// Memoized per-(model, ΔVth) evaluation state shared by all flow
/// entry points.
///
/// The module-level docs describe the cache layers and their keys.
#[derive(Debug)]
pub struct EvalEngine {
    process: ProcessLibrary,
    libraries: RwLock<HashMap<ModelShiftKey, Arc<CellLibrary>>>,
    loads: RwLock<HashMap<ModelShiftKey, Arc<Vec<f64>>>>,
    plans: RwLock<HashMap<PlanKey, CompressionPlan>>,
    counters: RwLock<BTreeMap<String, Arc<ModelCounters>>>,
}

// The engine is shared by reference across worker threads (rayon scans
// and the serve crate's request workers); regressing `Send + Sync`
// would only surface as a compile error far from the cause, so pin it
// here at the definition.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalEngine>();
};

impl EvalEngine {
    /// Creates an empty engine over `process`.
    #[must_use]
    pub fn new(process: ProcessLibrary) -> Self {
        EvalEngine {
            process,
            libraries: RwLock::new(HashMap::new()),
            loads: RwLock::new(HashMap::new()),
            plans: RwLock::new(HashMap::new()),
            counters: RwLock::new(BTreeMap::new()),
        }
    }

    /// The cache key of a shift: ΔVth rounded to the nearest nanovolt.
    ///
    /// Two shifts quantizing to the same key characterize to libraries
    /// that differ by less than any representable timing effect; two
    /// sweeps expressing "30 mV" with different float round-off hit
    /// the same entry.
    #[must_use]
    pub fn shift_key(shift: VthShift) -> i64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            (shift.volts() * 1e9).round() as i64
        }
    }

    /// The process library the engine characterizes from.
    #[must_use]
    pub fn process(&self) -> &ProcessLibrary {
        &self.process
    }

    /// The counter bundle of `model_key`, created on first use.
    fn counters(&self, model_key: &str) -> Arc<ModelCounters> {
        if let Some(counters) = self
            .counters
            .read()
            .expect("unpoisoned counter map")
            .get(model_key)
        {
            return Arc::clone(counters);
        }
        Arc::clone(
            self.counters
                .write()
                .expect("unpoisoned counter map")
                .entry(model_key.to_string())
                .or_default(),
        )
    }

    /// The characterized library at `shift` under `derating`, memoized
    /// per `(model_key, shift)`.
    ///
    /// The caller vouches that `derating` is the one the model behind
    /// `model_key` produces — the key carries the model identity, so
    /// two models never share an entry even when their deratings agree.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[must_use]
    pub fn library(
        &self,
        model_key: &str,
        derating: &DelayDerating,
        shift: VthShift,
    ) -> Arc<CellLibrary> {
        let key = (model_key.to_string(), Self::shift_key(shift));
        let counters = self.counters(model_key);
        if let Some(lib) = self
            .libraries
            .read()
            .expect("unpoisoned library cache")
            .get(&key)
        {
            counters.library_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lib);
        }
        // Miss path: take the write lock and re-check — another thread
        // may have characterized this shift while we waited, and each
        // key must be characterized exactly once (the hit-returns-the-
        // same-Arc contract the tests pin).
        let mut cache = self.libraries.write().expect("unpoisoned library cache");
        // Seeded bug for the checker's mutation self-test: skipping the
        // re-check re-characterizes keys that raced on the miss path.
        #[cfg(not(agequant_model_mutation))]
        if let Some(lib) = cache.get(&key) {
            counters.library_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lib);
        }
        counters.library_misses.fetch_add(1, Ordering::Relaxed);
        let lib = Arc::new(self.process.characterize(derating, shift));
        cache.insert(key, Arc::clone(&lib));
        lib
    }

    /// The STA load vector of `netlist` under the library at `shift`,
    /// memoized. Must always be called with the engine's one netlist.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[must_use]
    pub fn sta_loads(
        &self,
        model_key: &str,
        derating: &DelayDerating,
        netlist: &Netlist,
        shift: VthShift,
    ) -> Arc<Vec<f64>> {
        let key = (model_key.to_string(), Self::shift_key(shift));
        if let Some(loads) = self.loads.read().expect("unpoisoned load cache").get(&key) {
            debug_assert_eq!(
                loads.len(),
                netlist.net_count(),
                "engine reused across MACs"
            );
            return Arc::clone(loads);
        }
        // Characterize (or fetch) outside the load lock: `library`
        // takes its own lock and may be slow on a miss.
        let lib = self.library(model_key, derating, shift);
        let loads = Arc::new(Sta::compute_loads(netlist, &lib));
        self.loads
            .write()
            .expect("unpoisoned load cache")
            .entry(key)
            .or_insert_with(|| Arc::clone(&loads))
            .clone()
    }

    /// A cached compression plan for `(model_key, shift,
    /// constraint_ps)`, if the grid was already scanned for this triple.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    #[must_use]
    pub fn cached_plan(
        &self,
        model_key: &str,
        shift: VthShift,
        constraint_ps: f64,
    ) -> Option<CompressionPlan> {
        let key = (
            model_key.to_string(),
            Self::shift_key(shift),
            constraint_ps.to_bits(),
        );
        let found = self
            .plans
            .read()
            .expect("unpoisoned plan cache")
            .get(&key)
            .copied();
        let counters = self.counters(model_key);
        if found.is_some() {
            counters.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a freshly computed plan for `(model_key, shift,
    /// constraint_ps)`.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock was poisoned by a panicking caller.
    pub fn store_plan(
        &self,
        model_key: &str,
        shift: VthShift,
        constraint_ps: f64,
        plan: CompressionPlan,
    ) {
        let key = (
            model_key.to_string(),
            Self::shift_key(shift),
            constraint_ps.to_bits(),
        );
        self.plans
            .write()
            .expect("unpoisoned plan cache")
            .insert(key, plan);
    }

    /// Snapshot of the hit/miss counters, aggregated over every model
    /// the engine has served.
    ///
    /// # Panics
    ///
    /// Panics if the counter map was poisoned by a panicking caller.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for counters in self
            .counters
            .read()
            .expect("unpoisoned counter map")
            .values()
        {
            let s = counters.snapshot();
            total.library_hits += s.library_hits;
            total.library_misses += s.library_misses;
            total.plan_hits += s.plan_hits;
            total.plan_misses += s.plan_misses;
        }
        total
    }

    /// Snapshot of the hit/miss counters split by `model_key`, in key
    /// order — the per-model view `/metrics` and fleet reports expose.
    ///
    /// # Panics
    ///
    /// Panics if the counter map was poisoned by a panicking caller.
    #[must_use]
    pub fn stats_by_model(&self) -> BTreeMap<String, CacheStats> {
        self.counters
            .read()
            .expect("unpoisoned counter map")
            .iter()
            .map(|(key, counters)| (key.clone(), counters.snapshot()))
            .collect()
    }

    /// Drops every cached artifact (counters are kept).
    ///
    /// # Panics
    ///
    /// Panics if an internal lock was poisoned by a panicking caller.
    pub fn clear(&self) {
        self.libraries
            .write()
            .expect("unpoisoned library cache")
            .clear();
        self.loads.write().expect("unpoisoned load cache").clear();
        self.plans.write().expect("unpoisoned plan cache").clear();
    }
}

#[cfg(test)]
mod tests {
    use agequant_aging::TechProfile;

    use super::*;

    fn derating() -> DelayDerating {
        TechProfile::INTEL14NM.derating()
    }

    #[test]
    fn shift_keys_quantize_float_noise() {
        let a = VthShift::from_millivolts(30.0);
        let b = VthShift::from_volts(0.03 + 1e-13); // sub-nanovolt noise
        assert_ne!(a.volts().to_bits(), b.volts().to_bits());
        assert_eq!(EvalEngine::shift_key(a), EvalEngine::shift_key(b));
        assert_ne!(
            EvalEngine::shift_key(a),
            EvalEngine::shift_key(VthShift::from_millivolts(30.1))
        );
        assert_eq!(EvalEngine::shift_key(VthShift::FRESH), 0);
    }

    #[test]
    fn hit_rates_guard_against_zero_lookups() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.plan_hit_rate(), 0.0);
        assert_eq!(stats.library_hit_rate(), 0.0);

        let stats = CacheStats {
            library_hits: 3,
            library_misses: 1,
            plan_hits: 0,
            plan_misses: 0,
        };
        assert!((stats.library_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.plan_hit_rate(), 0.0, "no plan lookups yet");
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);

        let stats = CacheStats {
            library_hits: 1,
            library_misses: 1,
            plan_hits: 7,
            plan_misses: 1,
        };
        assert!((stats.plan_hit_rate() - 0.875).abs() < 1e-12);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn library_cache_hits_return_the_same_arc() {
        let engine = EvalEngine::new(ProcessLibrary::finfet14nm());
        let shift = VthShift::from_millivolts(20.0);
        let first = engine.library("nbti", &derating(), shift);
        let second = engine.library("nbti", &derating(), shift);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.stats();
        assert_eq!((stats.library_misses, stats.library_hits), (1, 1));

        // A cached library is exactly what characterize produces.
        let reference = ProcessLibrary::finfet14nm().characterize(&derating(), shift);
        assert_eq!(*second, reference);
    }

    #[test]
    fn models_never_share_cache_entries_or_counters() {
        let engine = EvalEngine::new(ProcessLibrary::finfet14nm());
        let shift = VthShift::from_millivolts(30.0);
        // Same derating, different model keys: entries must not alias.
        let a = engine.library("nbti", &derating(), shift);
        let b = engine.library("hci", &derating(), shift);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b, "same derating characterizes identically");
        let by_model = engine.stats_by_model();
        assert_eq!(by_model.len(), 2);
        assert_eq!(by_model["nbti"].library_misses, 1);
        assert_eq!(by_model["hci"].library_misses, 1);
        assert_eq!(by_model["nbti"].library_hits, 0);
        // The aggregate is the sum of the per-model snapshots.
        assert_eq!(engine.stats().library_misses, 2);
    }

    #[test]
    fn clear_forces_recharacterization() {
        let engine = EvalEngine::new(ProcessLibrary::finfet14nm());
        let shift = VthShift::from_millivolts(40.0);
        let first = engine.library("nbti", &derating(), shift);
        engine.clear();
        let second = engine.library("nbti", &derating(), shift);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(*first, *second);
        assert_eq!(engine.stats().library_misses, 2);
    }
}
