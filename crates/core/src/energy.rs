//! Fig. 5: energy of the compressed MAC vs the guardbanded baseline.

use agequant_aging::VthShift;
use agequant_power::{EnergyEstimator, OperandStream};
use agequant_sta::Compression;
use serde::{Deserialize, Serialize};

use crate::{AgingAwareQuantizer, FlowError};

/// One aging level's energy comparison (a bar of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyPoint {
    /// The aging level.
    pub shift: VthShift,
    /// The compression our technique applies here.
    pub compression: Compression,
    /// Baseline energy per MAC op (uncompressed operands at the
    /// guardbanded clock), fJ.
    pub baseline_fj: f64,
    /// Our energy per MAC op (compressed operands at the fresh clock),
    /// fJ.
    pub ours_fj: f64,
}

impl EnergyPoint {
    /// Our energy normalized to the baseline (< 1 is a win).
    #[must_use]
    pub fn normalized(&self) -> f64 {
        self.ours_fj / self.baseline_fj
    }
}

/// The Fig. 5 series: per-op energy of our technique vs the
/// guardbanded baseline over the aging sweep.
///
/// The baseline pays the full end-of-life guardband from day zero
/// (longer cycle → more leakage-time product) and switches full-width
/// operands; our technique runs at the fresh clock and switches
/// compressed operands, whose zeroed bits quiet their downstream
/// logic cones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyComparison {
    /// One point per aging level of the sweep.
    pub points: Vec<EnergyPoint>,
}

impl EnergyComparison {
    /// Computes the comparison with `samples` random operand vectors
    /// per estimate.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NoFeasibleCompression`].
    pub fn compute(flow: &AgingAwareQuantizer, samples: usize) -> Result<Self, FlowError> {
        let fresh_clock = flow.fresh_critical_path_ps();
        let guardbanded_clock = fresh_clock * (1.0 + flow.config().scenario.required_guardband());
        let mut points = Vec::new();
        for shift in flow.config().scenario.sweep() {
            let plan = flow.compression_for(shift)?;
            let lib = flow.config().process.characterize(flow.derating(), shift);
            let estimator = EnergyEstimator::new(flow.mac().netlist(), &lib);
            let baseline = estimator.estimate(
                &OperandStream::uniform(samples, flow.config().data_seed),
                guardbanded_clock,
            );
            let ours = estimator.estimate(
                &OperandStream::compressed_mac(
                    samples,
                    flow.config().data_seed,
                    flow.mac().geometry(),
                    plan.compression,
                    plan.padding,
                ),
                fresh_clock,
            );
            points.push(EnergyPoint {
                shift,
                compression: plan.compression,
                baseline_fj: baseline.total_fj(),
                ours_fj: ours.total_fj(),
            });
        }
        Ok(EnergyComparison { points })
    }

    /// Mean normalized energy over the *aged* levels (the paper's
    /// "46% average reduction" corresponds to a mean of ≈ 0.54).
    #[must_use]
    pub fn mean_aged_normalized(&self) -> f64 {
        let aged: Vec<f64> = self
            .points
            .iter()
            .filter(|p| !p.shift.is_fresh())
            .map(EnergyPoint::normalized)
            .collect();
        aged.iter().sum::<f64>() / aged.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::{AgingAwareQuantizer, FlowConfig};

    use super::*;

    #[test]
    fn energy_comparison_favors_ours_when_aged() {
        let flow = AgingAwareQuantizer::new(FlowConfig::edge_tpu_like()).unwrap();
        let cmp = EnergyComparison::compute(&flow, 150).expect("feasible");
        assert_eq!(cmp.points.len(), 6);
        // Fresh: no compression, but the baseline still pays the
        // guardbanded (longer) cycle's leakage, so ours ≤ baseline.
        let fresh = &cmp.points[0];
        assert!(fresh.compression.is_uncompressed());
        assert!(fresh.normalized() <= 1.0 + 1e-9);
        // Aged: compression must yield a clear reduction.
        for p in &cmp.points[1..] {
            assert!(
                p.normalized() < 1.0,
                "{}: normalized {}",
                p.shift,
                p.normalized()
            );
        }
        let mean = cmp.mean_aged_normalized();
        assert!((0.2..0.95).contains(&mean), "mean normalized energy {mean}");
    }
}
