//! Lifetime trajectories: Fig. 4a (delay) and Fig. 4b (accuracy).

use agequant_aging::VthShift;
use agequant_nn::NetArch;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{AgingAwareQuantizer, FlowError, ModelOutcome};

/// One aging level's delay picture (a point of Fig. 4a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayPoint {
    /// The aging level.
    pub shift: VthShift,
    /// Baseline (uncompressed) delay normalized to the fresh baseline.
    pub baseline_norm: f64,
    /// Our technique's delay (selected compression under the aged
    /// library), normalized to the fresh baseline.
    pub ours_norm: f64,
    /// The selected compression's α.
    pub alpha: u8,
    /// The selected compression's β.
    pub beta: u8,
    /// The selected padding name (`"MSB"`/`"LSB"`).
    pub padding: String,
}

/// The normalized-delay trajectory over the aging sweep (Fig. 4a) plus
/// the Table 2 data (selected compressions per level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayTrajectory {
    /// One point per aging level, fresh first.
    pub points: Vec<DelayPoint>,
}

impl DelayTrajectory {
    /// Computes the trajectory over the scenario's standard sweep.
    ///
    /// The per-aging-level computations (baseline STA + grid scan)
    /// are independent, so they fan out with rayon; the indexed map
    /// keeps the points in sweep order, and every level's library,
    /// load vector, and plan land in the flow's engine cache for
    /// later sweeps (Table 1 reuses Fig. 4a's plans, for instance).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NoFeasibleCompression`].
    pub fn compute(flow: &AgingAwareQuantizer) -> Result<Self, FlowError> {
        let fresh = flow.fresh_critical_path_ps();
        let points = flow
            .config()
            .scenario
            .sweep()
            .par_iter()
            .map(|&shift| {
                let plan = flow.compression_for(shift)?;
                Ok(DelayPoint {
                    shift,
                    baseline_norm: flow.baseline_delay_ps(shift) / fresh,
                    ours_norm: plan.compressed_delay_ps / fresh,
                    alpha: plan.compression.alpha(),
                    beta: plan.compression.beta(),
                    padding: plan.padding.name().to_string(),
                })
            })
            .collect::<Vec<Result<DelayPoint, FlowError>>>()
            .into_iter()
            .collect::<Result<Vec<DelayPoint>, FlowError>>()?;
        Ok(DelayTrajectory { points })
    }

    /// The end-of-life performance gain of removing the guardband:
    /// `baseline_norm(EOL) − 1` (the paper's 23%).
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    #[must_use]
    pub fn guardband_gain(&self) -> f64 {
        self.points
            .last()
            .expect("non-empty trajectory")
            .baseline_norm
            - 1.0
    }

    /// Whether our technique never exceeds the fresh baseline — the
    /// paper's "normalized delay is always ≤ 1" claim.
    #[must_use]
    pub fn ours_never_degrades(&self) -> bool {
        self.points.iter().all(|p| p.ours_norm <= 1.0 + 1e-9)
    }
}

/// Per-network accuracy losses at every aging level (Fig. 4b's box
/// plots and Table 1's cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyTrajectory {
    /// Aging levels, in sweep order (aged levels only).
    pub shifts: Vec<VthShift>,
    /// Per network: the outcome at each aging level.
    pub outcomes: Vec<(String, Vec<ModelOutcome>)>,
}

impl AccuracyTrajectory {
    /// Runs Algorithm 1 for every given network at every aged level of
    /// the scenario sweep.
    ///
    /// The networks fan out with rayon (each builds and evaluates its
    /// own model); within one network the levels run in order, hitting
    /// the engine's plan cache — the `(α, β)` grid is scanned once per
    /// level, not once per `(network, level)` pair as in the seed.
    ///
    /// # Errors
    ///
    /// Propagates flow errors.
    pub fn compute(flow: &AgingAwareQuantizer, archs: &[NetArch]) -> Result<Self, FlowError> {
        let shifts = flow.config().scenario.aged_sweep();
        let outcomes = archs
            .par_iter()
            .map(|&arch| {
                let model = arch.build(flow.config().model_seed);
                let mut per_level = Vec::with_capacity(shifts.len());
                for &shift in &shifts {
                    let plan = flow.compression_for(shift)?;
                    per_level.push(flow.select_method(&model, plan)?);
                }
                Ok((arch.name().to_string(), per_level))
            })
            .collect::<Vec<Result<(String, Vec<ModelOutcome>), FlowError>>>()
            .into_iter()
            .collect::<Result<Vec<_>, FlowError>>()?;
        Ok(AccuracyTrajectory { shifts, outcomes })
    }

    /// Accuracy losses of all networks at aging-level index `level` —
    /// the population of one Fig. 4b box.
    #[must_use]
    pub fn losses_at(&self, level: usize) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|(_, o)| o[level].accuracy_loss_pct)
            .collect()
    }

    /// Mean accuracy loss per aging level (the paper reports 0.24%,
    /// 0.45%, 1.11%, 1.80%, 2.96% — ours are substrate-scaled).
    #[must_use]
    pub fn mean_losses(&self) -> Vec<f64> {
        (0..self.shifts.len())
            .map(|level| {
                let losses = self.losses_at(level);
                losses.iter().sum::<f64>() / losses.len() as f64
            })
            .collect()
    }

    /// Five-number summary (min, q1, median, q3, max) of the losses at
    /// one level — the Fig. 4b box geometry.
    #[must_use]
    pub fn box_stats_at(&self, level: usize) -> [f64; 5] {
        let mut l = self.losses_at(level);
        l.sort_by(|a, b| a.partial_cmp(b).expect("losses are finite"));
        let q = |f: f64| -> f64 {
            let pos = f * (l.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let t = pos - lo as f64;
            l[lo] * (1.0 - t) + l[hi] * t
        };
        [l[0], q(0.25), q(0.5), q(0.75), l[l.len() - 1]]
    }
}

#[cfg(test)]
mod tests {
    use crate::FlowConfig;

    use super::*;

    fn quick_flow() -> AgingAwareQuantizer {
        let mut config = FlowConfig::edge_tpu_like();
        config.eval_samples = 20;
        config.calib_samples = 4;
        config.lapq = agequant_quant::LapqRefineConfig::off();
        AgingAwareQuantizer::new(config).expect("valid")
    }

    #[test]
    fn delay_trajectory_matches_paper_shape() {
        let flow = quick_flow();
        let t = DelayTrajectory::compute(&flow).expect("feasible everywhere");
        assert_eq!(t.points.len(), 6);
        // Baseline grows monotonically and ends ≈ +23%.
        for pair in t.points.windows(2) {
            assert!(pair[1].baseline_norm >= pair[0].baseline_norm);
        }
        assert!(
            (0.15..=0.35).contains(&t.guardband_gain()),
            "{}",
            t.guardband_gain()
        );
        // Our delay stays at or below the fresh baseline for the
        // entire lifetime.
        assert!(t.ours_never_degrades());
        // Fresh point is exactly 1 / 1 with no compression.
        assert_eq!(t.points[0].baseline_norm, 1.0);
        assert_eq!((t.points[0].alpha, t.points[0].beta), (0, 0));
    }

    #[test]
    fn accuracy_trajectory_is_graceful_on_average() {
        let flow = quick_flow();
        let t = AccuracyTrajectory::compute(&flow, &[NetArch::AlexNet, NetArch::Vgg13])
            .expect("flow completes");
        assert_eq!(t.shifts.len(), 5);
        let means = t.mean_losses();
        // Late-life loss must not be lower than early-life loss.
        assert!(
            means[4] + 1e-9 >= means[0],
            "graceful degradation violated: {means:?}"
        );
        let boxes = t.box_stats_at(4);
        assert!(boxes[0] <= boxes[2] && boxes[2] <= boxes[4]);
    }
}
