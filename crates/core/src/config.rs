//! Flow configuration.

use agequant_aging::{AgingScenario, DegradationModel, ModelSpec, TechProfile};
use agequant_cells::ProcessLibrary;
use agequant_netlist::mac::MacGeometry;
use agequant_netlist::{MultiplierArch, PrefixStyle};
use agequant_quant::LapqRefineConfig;
use serde::{Deserialize, Serialize};

use crate::FlowError;

/// The MAC microarchitecture under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacSpec {
    /// Operand and accumulator widths.
    pub geometry: MacGeometry,
    /// Multiplier architecture.
    pub arch: MultiplierArch,
    /// Prefix style of the multiplier's final adder.
    pub mult_adder: PrefixStyle,
    /// Prefix style of the accumulate adder.
    pub acc_adder: PrefixStyle,
}

impl MacSpec {
    /// The paper's Edge-TPU-like MAC (8×8 multiplier, 22-bit adder):
    /// Wallace reduction with a Brent–Kung final adder and a
    /// Kogge–Stone accumulator — the generator mix whose
    /// compression→delay-gain surface matches the paper's measured
    /// DesignWare MAC (see DESIGN.md and the `ablation_mac` bench).
    #[must_use]
    pub fn edge_tpu() -> Self {
        MacSpec {
            geometry: MacGeometry::EDGE_TPU,
            arch: MultiplierArch::Wallace,
            mult_adder: PrefixStyle::BrentKung,
            acc_adder: PrefixStyle::KoggeStone,
        }
    }
}

/// Configuration of the aging-aware quantization flow.
///
/// [`FlowConfig::edge_tpu_like`] reproduces the paper's setup; every
/// knob is public so ablations can vary one dimension at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// The driving circuit.
    pub mac: MacSpec,
    /// The technology's cell models.
    pub process: ProcessLibrary,
    /// Aging kinetics / derating / lifetime.
    pub scenario: AgingScenario,
    /// `(α, β)` search grid upper bound (the paper scans `[0, 8]²`).
    pub grid_max: u8,
    /// Evaluation-set size for accuracy measurements.
    pub eval_samples: usize,
    /// Calibration-set size for quantization statistics.
    pub calib_samples: usize,
    /// Seed for dataset noise.
    pub data_seed: u64,
    /// Seed for model-zoo weights.
    pub model_seed: u64,
    /// LAPQ refinement budget.
    pub lapq: LapqRefineConfig,
    /// Optional accuracy-loss threshold `e` in percent (Algorithm 1
    /// input 4): when set, the first method meeting it wins; when
    /// `None`, all methods are tried and the best wins (the paper's
    /// evaluation mode).
    pub threshold_pct: Option<f64>,
    /// The degradation model driving kinetics and delay derating.
    /// `None` (and configs saved before this field existed) means the
    /// default power-law NBTI on the 14 nm profile — the paper's setup,
    /// bit-identical to the pre-model-stack flow.
    pub model: Option<ModelSpec>,
}

impl FlowConfig {
    /// The paper's configuration: Edge-TPU MAC on the calibrated 14 nm
    /// process, 10-year scenario, full `[0, 8]²` grid.
    #[must_use]
    pub fn edge_tpu_like() -> Self {
        FlowConfig {
            mac: MacSpec::edge_tpu(),
            process: ProcessLibrary::finfet14nm(),
            scenario: TechProfile::INTEL14NM.scenario(),
            grid_max: 8,
            eval_samples: 60,
            calib_samples: 8,
            data_seed: 2021,
            model_seed: 7,
            lapq: LapqRefineConfig::light(),
            threshold_pct: None,
            model: None,
        }
    }

    /// The degradation model this configuration selects: the explicit
    /// [`FlowConfig::model`] if set, the default power-law NBTI
    /// otherwise.
    #[must_use]
    pub fn model_spec(&self) -> ModelSpec {
        self.model.clone().unwrap_or_default()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] on inconsistencies.
    pub fn validate(&self) -> Result<(), FlowError> {
        self.mac
            .geometry
            .validate()
            .map_err(FlowError::InvalidConfig)?;
        if self.eval_samples == 0 || self.calib_samples == 0 {
            return Err(FlowError::InvalidConfig(
                "sample counts must be positive".into(),
            ));
        }
        if usize::from(self.grid_max) >= self.mac.geometry.a_width.max(self.mac.geometry.b_width)
            && self.grid_max != 8
        {
            // grid_max == 8 is allowed (the paper's stated scan) even
            // though α=8 itself can never be feasible for 8-bit
            // operands; other mismatches are configuration errors.
            return Err(FlowError::InvalidConfig(format!(
                "grid_max {} exceeds operand widths",
                self.grid_max
            )));
        }
        if let Some(t) = self.threshold_pct {
            if !(0.0..=100.0).contains(&t) {
                return Err(FlowError::InvalidConfig(format!(
                    "threshold {t}% out of range"
                )));
            }
        }
        if let Some(model) = &self.model {
            let violations = model.profile().violations();
            if !violations.is_empty() {
                return Err(FlowError::InvalidConfig(format!(
                    "degradation-model profile: {}",
                    violations.join("; ")
                )));
            }
        }
        Ok(())
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::edge_tpu_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        FlowConfig::edge_tpu_like().validate().expect("valid");
    }

    #[test]
    fn bad_samples_rejected() {
        let mut c = FlowConfig::edge_tpu_like();
        c.eval_samples = 0;
        assert!(matches!(c.validate(), Err(FlowError::InvalidConfig(_))));
    }

    #[test]
    fn bad_threshold_rejected() {
        let mut c = FlowConfig::edge_tpu_like();
        c.threshold_pct = Some(150.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_model_spec_is_nbti() {
        let c = FlowConfig::edge_tpu_like();
        assert!(c.model.is_none());
        assert_eq!(c.model_spec().model_key(), "nbti");
    }

    #[test]
    fn bad_model_profile_rejected() {
        // `ModelSpec::nbti` validates eagerly, but a deserialized
        // config bypasses the constructor — build the invalid spec the
        // way serde would.
        let mut c = FlowConfig::edge_tpu_like();
        c.model = Some(ModelSpec::Nbti(agequant_aging::NbtiPowerLaw {
            profile: TechProfile {
                eol_shift_v: -0.01,
                ..TechProfile::INTEL14NM
            },
            duty_cycle: 1.0,
        }));
        assert!(matches!(c.validate(), Err(FlowError::InvalidConfig(_))));
    }

    #[test]
    fn pre_model_configs_still_parse() {
        use serde::{Deserialize, Serialize, Value};
        // A config serialized before the `model` field existed has no
        // such key; deserialization must default it to `None`.
        let mut tree = FlowConfig::edge_tpu_like().to_value();
        let Value::Map(entries) = &mut tree else {
            panic!("config serializes to a map");
        };
        let before = entries.len();
        entries.retain(|(key, _)| key != "model");
        assert_eq!(entries.len(), before - 1, "model key was present");
        let back = FlowConfig::from_value(&tree).expect("old-format config parses");
        assert!(back.model.is_none());
        assert_eq!(back, FlowConfig::edge_tpu_like());
    }
}
