//! Algorithm 1: aging-aware quantization.
//!
//! Every per-aging-level entry point has two faces: the default
//! methods run on the shared [`EvalEngine`] (memoized characterization
//! and load vectors, plan cache, rayon-parallel scans), while the
//! `*_serial` methods preserve the original uncached single-threaded
//! reference implementation. The two are bit-identical — see
//! `crates/core/tests/equivalence.rs`.

use agequant_check::sync::Arc;

use agequant_aging::{DegradationModel, DelayDerating, ModelSpec, VthShift};
use agequant_netlist::mac::MacCircuit;
use agequant_nn::{accuracy_loss_pct, ExactExecutor, Model, NetArch, SyntheticDataset};
use agequant_quant::{quantize_model_with, BitWidths, QuantMethod, QuantizedModel};
use agequant_sta::{mac_case_on, CaseAssignment, Compression, Padding, Sta};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{EvalEngine, FlowConfig, FlowError};

/// One timing-feasible compression point found by the STA scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasiblePoint {
    /// The `(α, β)` compression.
    pub compression: Compression,
    /// The padding under which it meets timing.
    pub padding: Padding,
    /// The aged critical path under this case, ps.
    pub delay_ps: f64,
}

/// The outcome of Algorithm 1 lines 2–5 for one aging level: the
/// minimum-norm compression whose aged critical path meets the fresh
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionPlan {
    /// The aging level planned for.
    pub shift: VthShift,
    /// The selected `(α, β)`.
    pub compression: Compression,
    /// The selected padding.
    pub padding: Padding,
    /// Aged critical path under the selected case, ps.
    pub compressed_delay_ps: f64,
    /// The timing constraint used (fresh critical path), ps.
    pub constraint_ps: f64,
    /// Number of feasible `(compression, padding)` points found.
    pub feasible_points: usize,
}

impl CompressionPlan {
    /// The bit widths this plan induces (Section 5's rule).
    pub fn bit_widths(&self) -> BitWidths {
        BitWidths::for_compression(self.compression.alpha(), self.compression.beta())
    }
}

/// The outcome of the full Algorithm 1 for one network at one aging
/// level: compression plan plus the selected quantization method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOutcome {
    /// The network evaluated.
    pub network: String,
    /// The compression plan applied.
    pub plan: CompressionPlan,
    /// The selected method (best accuracy, or first meeting the
    /// threshold).
    pub method: QuantMethod,
    /// Accuracy loss of the selected method vs FP32, percent.
    pub accuracy_loss_pct: f64,
    /// Loss of every method tried, in library order.
    pub method_losses: Vec<(QuantMethod, f64)>,
}

/// The aging-aware quantization flow (Algorithm 1 + Fig. 3).
///
/// Construction synthesizes the MAC, runs fresh STA to fix the clock
/// (zero-slack, no guardband), and validates the configuration; the
/// per-aging-level entry points then scan compressions and select
/// quantization methods. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct AgingAwareQuantizer {
    config: FlowConfig,
    mac: MacCircuit,
    fresh_cp_ps: f64,
    /// The degradation model the flow plans under (the config's
    /// selection, default power-law NBTI), with its cache identity and
    /// delay derating resolved once at construction.
    model: ModelSpec,
    model_key: String,
    derating: DelayDerating,
    /// Shared across clones: the caches are keyed on (model, ΔVth,
    /// constraint), which is sound because `mac` and `config` are
    /// immutable after construction.
    engine: Arc<EvalEngine>,
}

impl AgingAwareQuantizer {
    /// Builds the flow: synthesizes the MAC and fixes the fresh clock.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        let engine = Arc::new(EvalEngine::new(config.process.clone()));
        Self::with_engine(config, engine)
    }

    /// Like [`new`](Self::new), but on a caller-provided engine — the
    /// decision server uses this to share one engine (and its caches)
    /// across quantizers for different degradation models. The engine's
    /// caches are keyed on the model, so sharing is always sound as
    /// long as the engine was built over the same process library and
    /// MAC netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn with_engine(config: FlowConfig, engine: Arc<EvalEngine>) -> Result<Self, FlowError> {
        config.validate()?;
        let mac = MacCircuit::with_adders(
            config.mac.geometry,
            config.mac.arch,
            config.mac.mult_adder,
            config.mac.acc_adder,
        )
        .map_err(FlowError::InvalidConfig)?;
        let model = config.model_spec();
        let model_key = model.model_key();
        let derating = model.derating();
        let fresh_lib = engine.library(&model_key, &derating, VthShift::FRESH);
        let fresh_loads = engine.sta_loads(&model_key, &derating, mac.netlist(), VthShift::FRESH);
        let fresh_cp_ps = Sta::with_loads(mac.netlist(), &fresh_lib, &fresh_loads)
            .analyze_uncompressed()
            .critical_path_ps;
        Ok(AgingAwareQuantizer {
            config,
            mac,
            fresh_cp_ps,
            model,
            model_key,
            derating,
            engine,
        })
    }

    /// The flow's configuration.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The degradation model the flow plans under.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The model's stable cache key (see
    /// [`DegradationModel::model_key`]).
    #[must_use]
    pub fn model_key(&self) -> &str {
        &self.model_key
    }

    /// The model's delay derating, resolved once at construction.
    #[must_use]
    pub fn derating(&self) -> &DelayDerating {
        &self.derating
    }

    /// The memoized evaluation engine backing this flow.
    #[must_use]
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// The synthesized MAC.
    #[must_use]
    pub fn mac(&self) -> &MacCircuit {
        &self.mac
    }

    /// The fresh (zero-slack) critical path that serves as the clock
    /// constraint for the whole lifetime, ps.
    #[must_use]
    pub fn fresh_critical_path_ps(&self) -> f64 {
        self.fresh_cp_ps
    }

    /// The aged, uncompressed critical path at `shift`, ps — the
    /// baseline of Fig. 4a. Library and load vector come from the
    /// engine cache.
    #[must_use]
    pub fn baseline_delay_ps(&self, shift: VthShift) -> f64 {
        let lib = self.engine.library(&self.model_key, &self.derating, shift);
        let loads =
            self.engine
                .sta_loads(&self.model_key, &self.derating, self.mac.netlist(), shift);
        Sta::with_loads(self.mac.netlist(), &lib, &loads)
            .analyze_uncompressed()
            .critical_path_ps
    }

    /// The valid `(compression, padding)` scan order of the grid:
    /// compressions in [`Compression::grid`] order, paddings in
    /// [`Padding::ALL`] order within each. Both execution strategies
    /// evaluate exactly this sequence.
    fn grid_cases(&self) -> Vec<(Compression, Padding)> {
        let mut cases = Vec::new();
        for compression in Compression::grid(self.config.grid_max) {
            if compression.validate(self.mac.geometry()).is_err() {
                continue;
            }
            for padding in Padding::ALL {
                cases.push((compression, padding));
            }
        }
        cases
    }

    /// One STA point of the grid scan.
    fn scan_case(&self, sta: &Sta<'_>, compression: Compression, padding: Padding) -> f64 {
        let case: CaseAssignment = mac_case_on(
            self.mac.netlist(),
            self.mac.geometry(),
            compression,
            padding,
        )
        .expect("grid cases are valid for the flow's MAC");
        sta.analyze(&case).critical_path_ps
    }

    /// Scans the full `(α, β)` grid under both paddings at `shift`,
    /// returning every point whose aged critical path meets
    /// `constraint_ps` (Algorithm 1 lines 2–4 generalized to an
    /// arbitrary constraint).
    ///
    /// The scan runs on the engine: the characterized library and the
    /// load vector are cached per ΔVth, one STA session serves the
    /// whole grid, and the independent case analyses fan out with
    /// rayon. The indexed parallel map preserves scan order, so the
    /// result is bit-identical to
    /// [`feasible_compressions_serial`](Self::feasible_compressions_serial).
    #[must_use]
    pub fn feasible_compressions(&self, shift: VthShift, constraint_ps: f64) -> Vec<FeasiblePoint> {
        let lib = self.engine.library(&self.model_key, &self.derating, shift);
        let loads =
            self.engine
                .sta_loads(&self.model_key, &self.derating, self.mac.netlist(), shift);
        let sta = Sta::with_loads(self.mac.netlist(), &lib, &loads);
        let cases = self.grid_cases();
        cases
            .par_iter()
            .map(|&(compression, padding)| FeasiblePoint {
                compression,
                padding,
                delay_ps: self.scan_case(&sta, compression, padding),
            })
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|p| p.delay_ps <= constraint_ps + 1e-9)
            .collect()
    }

    /// The original single-threaded, uncached grid scan: characterizes
    /// the library and rebuilds the STA session on every call, then
    /// walks the grid in order. Kept as the reference implementation
    /// the equivalence suite and the engine benches compare against.
    #[must_use]
    pub fn feasible_compressions_serial(
        &self,
        shift: VthShift,
        constraint_ps: f64,
    ) -> Vec<FeasiblePoint> {
        let lib = self.config.process.characterize(&self.derating, shift);
        let sta = Sta::new(self.mac.netlist(), &lib);
        let mut points = Vec::new();
        for (compression, padding) in self.grid_cases() {
            let delay_ps = self.scan_case(&sta, compression, padding);
            if delay_ps <= constraint_ps + 1e-9 {
                points.push(FeasiblePoint {
                    compression,
                    padding,
                    delay_ps,
                });
            }
        }
        points
    }

    /// Algorithm 1 lines 2–5: the minimum-norm feasible compression at
    /// `shift` against the fresh clock. Ties prefer the smaller α
    /// (highest activation precision, following ACIQ's observation),
    /// then the faster padding.
    ///
    /// # Errors
    ///
    /// [`FlowError::NoFeasibleCompression`] if even the maximum
    /// compression misses timing.
    pub fn compression_for(&self, shift: VthShift) -> Result<CompressionPlan, FlowError> {
        self.compression_for_constraint(shift, self.fresh_cp_ps)
    }

    /// Like [`compression_for`](Self::compression_for) with an explicit
    /// timing constraint — used for the partial-guardband study
    /// (Section 7: "(3,1) compression and only 9% guardband").
    ///
    /// # Errors
    ///
    /// [`FlowError::NoFeasibleCompression`] if nothing meets the
    /// constraint.
    pub fn compression_for_constraint(
        &self,
        shift: VthShift,
        constraint_ps: f64,
    ) -> Result<CompressionPlan, FlowError> {
        if let Some(plan) = self
            .engine
            .cached_plan(&self.model_key, shift, constraint_ps)
        {
            return Ok(plan);
        }
        let points = self.feasible_compressions(shift, constraint_ps);
        let plan = Self::select_plan(&points, shift, constraint_ps)?;
        self.engine
            .store_plan(&self.model_key, shift, constraint_ps, plan);
        Ok(plan)
    }

    /// The original uncached single-threaded Algorithm 1 lines 2–5,
    /// kept as the equivalence reference for
    /// [`compression_for_constraint`](Self::compression_for_constraint).
    ///
    /// # Errors
    ///
    /// [`FlowError::NoFeasibleCompression`] if nothing meets the
    /// constraint.
    pub fn compression_for_constraint_serial(
        &self,
        shift: VthShift,
        constraint_ps: f64,
    ) -> Result<CompressionPlan, FlowError> {
        let points = self.feasible_compressions_serial(shift, constraint_ps);
        Self::select_plan(&points, shift, constraint_ps)
    }

    /// Algorithm 1 line 5: picks the plan from the feasible set. Pure
    /// selection — both execution strategies funnel through it.
    fn select_plan(
        points: &[FeasiblePoint],
        shift: VthShift,
        constraint_ps: f64,
    ) -> Result<CompressionPlan, FlowError> {
        let min_norm = points
            .iter()
            .map(|p| p.compression.magnitude())
            .fold(f64::INFINITY, f64::min);
        // Minimum Euclidean norm (the paper's surrogate), with a
        // near-tie band: among points within +0.5 of the minimal norm,
        // prefer the *balanced* compression (smallest |α − β|), then
        // the smaller α, then the faster padding. For exact ties this
        // coincides with the paper's "smallest α" rule; the band
        // additionally steers away from extreme single-operand
        // compressions whose accuracy cost the symmetric norm
        // under-estimates (the same observation — cited from ACIQ —
        // that motivates the paper's own tie-break).
        let best = points
            .iter()
            .filter(|p| p.compression.magnitude() <= min_norm + 0.5)
            .min_by(|a, b| {
                let key = |p: &FeasiblePoint| {
                    (
                        i16::from(p.compression.alpha()) - i16::from(p.compression.beta()),
                        p.compression.alpha(),
                        p.delay_ps,
                    )
                };
                let balance = |p: &FeasiblePoint| {
                    let (d, alpha, delay) = key(p);
                    (d.unsigned_abs(), alpha, delay)
                };
                balance(a)
                    .partial_cmp(&balance(b))
                    .expect("delays are finite")
            })
            .copied()
            .ok_or(FlowError::NoFeasibleCompression {
                shift,
                constraint_ps,
            })?;
        Ok(CompressionPlan {
            shift,
            compression: best.compression,
            padding: best.padding,
            compressed_delay_ps: best.delay_ps,
            constraint_ps,
            feasible_points: points.len(),
        })
    }

    /// The flow's dataset, generated **once** from `data_seed`:
    /// `calib_samples + eval_samples` images drawn from a single noise
    /// stream. [`splits`](Self::splits) carves it into the disjoint
    /// calibration and evaluation sets. (The seed implementation
    /// generated the evaluation set a second time from `data_seed ^ 1`
    /// and discarded this stream's evaluation tail; the one-stream
    /// split keeps the sets disjoint without the wasted generation.)
    #[must_use]
    pub fn dataset(&self) -> SyntheticDataset {
        SyntheticDataset::generate(
            self.config.eval_samples + self.config.calib_samples,
            self.config.data_seed,
        )
    }

    /// The `(calibration, evaluation)` split of
    /// [`dataset`](Self::dataset): the first `calib_samples` images
    /// calibrate quantization statistics, the remaining `eval_samples`
    /// measure accuracy. Disjoint by construction — no image is seen
    /// by both calibration and evaluation.
    #[must_use]
    pub fn splits(&self) -> (SyntheticDataset, SyntheticDataset) {
        self.dataset().split_at(self.config.calib_samples)
    }

    /// Algorithm 1 lines 6–9 for an already-planned compression:
    /// quantize `model` with every library method at the plan's bit
    /// widths and select per the threshold policy.
    ///
    /// The per-method quantize-and-evaluate runs fan out with rayon;
    /// the threshold policy is then applied to the ordered loss list,
    /// reproducing the serial early exit exactly: with a threshold
    /// set, the reported `method_losses` end at the first method
    /// meeting it. Bit-identical to
    /// [`select_method_serial`](Self::select_method_serial).
    ///
    /// # Errors
    ///
    /// [`FlowError::ThresholdUnmet`] when a threshold is configured and
    /// no method satisfies it.
    pub fn select_method(
        &self,
        model: &Model,
        plan: CompressionPlan,
    ) -> Result<ModelOutcome, FlowError> {
        let (calib, eval) = self.splits();
        let fp32 = model.predict_all(&ExactExecutor, eval.images());
        let bits = plan.bit_widths();
        let method_losses: Vec<(QuantMethod, f64)> = QuantMethod::ALL
            .par_iter()
            .map(|&method| {
                let quantized: QuantizedModel =
                    quantize_model_with(model, method, bits, &calib, &self.config.lapq);
                let preds = model.predict_all(&quantized, eval.images());
                (method, accuracy_loss_pct(&fp32, &preds))
            })
            .collect();
        Self::resolve_methods(model.name(), plan, method_losses, self.config.threshold_pct)
    }

    /// The original single-threaded lines 6–9, with the true early
    /// exit on the threshold. Kept as the equivalence reference for
    /// [`select_method`](Self::select_method).
    ///
    /// # Errors
    ///
    /// [`FlowError::ThresholdUnmet`] when a threshold is configured and
    /// no method satisfies it.
    pub fn select_method_serial(
        &self,
        model: &Model,
        plan: CompressionPlan,
    ) -> Result<ModelOutcome, FlowError> {
        let (calib, eval) = self.splits();
        let fp32 = model.predict_all(&ExactExecutor, eval.images());
        let bits = plan.bit_widths();

        let mut method_losses = Vec::with_capacity(QuantMethod::ALL.len());
        for method in QuantMethod::ALL {
            let quantized: QuantizedModel =
                quantize_model_with(model, method, bits, &calib, &self.config.lapq);
            let preds = model.predict_all(&quantized, eval.images());
            let loss = accuracy_loss_pct(&fp32, &preds);
            method_losses.push((method, loss));
            if let Some(threshold) = self.config.threshold_pct {
                if loss <= threshold {
                    // Line 9: first method meeting the threshold wins.
                    break;
                }
            }
        }
        Self::resolve_methods(model.name(), plan, method_losses, self.config.threshold_pct)
    }

    /// Applies the threshold policy to the ordered per-method losses.
    ///
    /// With a threshold set, the *first* method (library order)
    /// meeting it wins and `method_losses` is truncated at that
    /// method — exactly the paper's line-9 early exit, so the
    /// parallel path (which evaluates every method) reports the same
    /// outcome the stop-early serial loop does. Without a threshold,
    /// the best loss wins, first method on exact ties.
    fn resolve_methods(
        network: &str,
        plan: CompressionPlan,
        mut method_losses: Vec<(QuantMethod, f64)>,
        threshold_pct: Option<f64>,
    ) -> Result<ModelOutcome, FlowError> {
        if let Some(threshold) = threshold_pct {
            return match method_losses.iter().position(|&(_, l)| l <= threshold) {
                Some(pos) => {
                    method_losses.truncate(pos + 1);
                    let (method, loss) = method_losses[pos];
                    Ok(ModelOutcome {
                        network: network.to_string(),
                        plan,
                        method,
                        accuracy_loss_pct: loss,
                        method_losses,
                    })
                }
                None => {
                    let best_loss_pct = method_losses
                        .iter()
                        .map(|&(_, l)| l)
                        .fold(f64::INFINITY, f64::min);
                    Err(FlowError::ThresholdUnmet {
                        best_loss_pct,
                        threshold_pct: threshold,
                    })
                }
            };
        }
        let (method, loss) = method_losses
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("losses are finite"))
            .expect("at least one method evaluated");
        Ok(ModelOutcome {
            network: network.to_string(),
            plan,
            method,
            accuracy_loss_pct: loss,
            method_losses,
        })
    }

    /// The complete Algorithm 1 for one zoo network at one aging level.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError::NoFeasibleCompression`] and
    /// [`FlowError::ThresholdUnmet`].
    pub fn quantize_arch(&self, arch: NetArch, shift: VthShift) -> Result<ModelOutcome, FlowError> {
        let plan = self.compression_for(shift)?;
        let model = arch.build(self.config.model_seed);
        self.select_method(&model, plan)
    }
}

#[cfg(test)]
mod tests {
    use agequant_aging::AGING_SWEEP_MV;

    use super::*;

    fn flow() -> AgingAwareQuantizer {
        AgingAwareQuantizer::new(FlowConfig::edge_tpu_like()).expect("valid config")
    }

    #[test]
    fn fresh_chip_needs_no_compression() {
        let plan = flow().compression_for(VthShift::FRESH).expect("feasible");
        assert!(plan.compression.is_uncompressed());
        assert_eq!(plan.compressed_delay_ps, plan.constraint_ps);
    }

    #[test]
    fn compression_grows_with_aging() {
        let flow = flow();
        let mut last_norm = -1.0;
        for &mv in &AGING_SWEEP_MV {
            let plan = flow
                .compression_for(VthShift::from_millivolts(mv))
                .unwrap_or_else(|e| panic!("{mv} mV: {e}"));
            let norm = plan.compression.magnitude();
            assert!(
                norm >= last_norm,
                "norm should be monotone: {norm} after {last_norm} at {mv} mV"
            );
            last_norm = norm;
            // The plan must actually close timing.
            assert!(plan.compressed_delay_ps <= plan.constraint_ps + 1e-9);
        }
    }

    #[test]
    fn eol_requires_substantial_compression() {
        let plan = flow()
            .compression_for(VthShift::from_millivolts(50.0))
            .expect("feasible at end of life");
        assert!(
            u32::from(plan.compression.alpha()) + u32::from(plan.compression.beta()) >= 4,
            "EOL compression {} too mild",
            plan.compression
        );
    }

    #[test]
    fn partial_guardband_needs_less_compression() {
        let flow = flow();
        let eol = VthShift::from_millivolts(50.0);
        let strict = flow.compression_for(eol).expect("no guardband");
        let relaxed = flow
            .compression_for_constraint(eol, flow.fresh_critical_path_ps() * 1.09)
            .expect("9% guardband");
        assert!(relaxed.compression.magnitude() <= strict.compression.magnitude());
    }

    #[test]
    fn baseline_delay_matches_derating_scale() {
        let flow = flow();
        let fresh = flow.baseline_delay_ps(VthShift::FRESH);
        assert!((fresh - flow.fresh_critical_path_ps()).abs() < 1e-9);
        let eol = flow.baseline_delay_ps(VthShift::from_millivolts(50.0));
        let ratio = eol / fresh;
        // Cell-level sensitivities spread around the nominal 1.23.
        assert!((1.15..=1.35).contains(&ratio), "EOL ratio {ratio}");
    }

    #[test]
    fn infeasible_constraint_is_reported() {
        let flow = flow();
        let err = flow
            .compression_for_constraint(VthShift::from_millivolts(50.0), 1.0)
            .unwrap_err();
        assert!(matches!(err, FlowError::NoFeasibleCompression { .. }));
    }

    #[test]
    fn threshold_policy_returns_early_or_errors() {
        let mut config = FlowConfig::edge_tpu_like();
        config.eval_samples = 20;
        config.calib_samples = 4;
        config.lapq = agequant_quant::LapqRefineConfig::off();

        // Generous threshold: the first tried method should win.
        config.threshold_pct = Some(100.0);
        let flow = AgingAwareQuantizer::new(config.clone()).unwrap();
        let outcome = flow
            .quantize_arch(NetArch::AlexNet, VthShift::from_millivolts(10.0))
            .expect("threshold met");
        assert_eq!(outcome.method, QuantMethod::ALL[0]);
        assert_eq!(outcome.method_losses.len(), 1, "stopped at first method");

        // Impossible threshold: error.
        config.threshold_pct = Some(0.0);
        let flow = AgingAwareQuantizer::new(config).unwrap();
        let result = flow.quantize_arch(NetArch::SqueezeNet11, VthShift::from_millivolts(50.0));
        assert!(matches!(result, Err(FlowError::ThresholdUnmet { .. })));
    }

    #[test]
    fn full_algorithm_runs_for_one_network() {
        let mut config = FlowConfig::edge_tpu_like();
        config.eval_samples = 20;
        config.calib_samples = 4;
        config.lapq = agequant_quant::LapqRefineConfig::off();
        let flow = AgingAwareQuantizer::new(config).unwrap();
        let outcome = flow
            .quantize_arch(NetArch::AlexNet, VthShift::from_millivolts(20.0))
            .expect("algorithm completes");
        assert_eq!(outcome.method_losses.len(), QuantMethod::ALL.len());
        let best = outcome
            .method_losses
            .iter()
            .map(|&(_, l)| l)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.accuracy_loss_pct, best);
    }
}
