//! The memory-aging accuracy loop, end to end: quantized zoo weights
//! → bit-duty profile → SRAM cell aging → per-bit read-failure
//! probabilities → [`ProfileInjector`] faults → measured accuracy
//! loss, with and without the inversion-encoding mitigation.
//!
//! This is the system-level consequence of `agequant-mem`'s physics:
//! an aged weight memory measurably degrades zoo-model accuracy, and
//! the inversion-encoded memory — same cells, same mission years —
//! degrades measurably less.

use agequant_faults::ProfileInjector;
use agequant_mem::{MemoryReport, ReencodeSchedule, SramCellModel};
use agequant_nn::{accuracy_loss_pct, NetArch, SyntheticDataset};
use agequant_quant::{quantize_model_with, BitWidths, LapqRefineConfig, QuantMethod};

/// Fraction of reads a *marginal* (SNM-degraded) cell actually
/// upsets. The cell model's failure probability says how likely a
/// cell is to have aged past its noise margin; a cell sitting at that
/// margin does not corrupt every access — it flips when read noise
/// happens to exceed the remaining margin, here taken as 1% of
/// accesses. `ProfileInjector` draws independently per
/// multiplication, so this is the bridge from "probability the cell
/// is marginal" to "probability this read is corrupted".
const READ_DISTURB: f64 = 1e-2;

/// Maps per-weight-bit marginal-cell probabilities (LSB first) into
/// per-product-bit flip probabilities for [`ProfileInjector`]. A
/// flipped stored weight bit `k` perturbs an `a × w` product by
/// `±a·2^k` — for 8-bit activations a perturbation of magnitude up to
/// `2^(k+8)` — so it is emulated as a flip of product bit `k + 7`,
/// the mid-magnitude of that range, capped at the 16-bit product MSB.
/// Probabilities landing on the same product bit combine as
/// independent events.
fn product_probs(weight_probs: &[f64]) -> Vec<f64> {
    let mut probs = vec![0.0f64; 16];
    for (k, &p) in weight_probs.iter().enumerate() {
        let bit = (k + 7).min(15);
        let p = p * READ_DISTURB;
        probs[bit] = 1.0 - (1.0 - probs[bit]) * (1.0 - p);
    }
    probs
}

#[test]
fn aged_memory_degrades_accuracy_and_encoding_recovers_most_of_it() {
    let years = 4.0;
    let model = NetArch::AlexNet.build(3);
    let data = SyntheticDataset::generate(30, 11);
    let q = quantize_model_with(
        &model,
        QuantMethod::MinMax,
        BitWidths::W8A8,
        &data.take(4),
        &LapqRefineConfig::off(),
    );
    let report = MemoryReport::build(
        "alexnet",
        &q,
        &SramCellModel::INTEL14NM,
        &ReencodeSchedule::DEFAULT,
        &[years],
    );
    let clean = model.predict_all(&q, data.images());

    let loss_at = |weight_probs: &[f64]| -> f64 {
        let injector = ProfileInjector::new(&product_probs(weight_probs), 5);
        let noisy = model.predict_all(&q.with_mul(&injector), data.images());
        accuracy_loss_pct(&clean, &noisy)
    };
    let plain_probs = report.plain_bit_failure_probs(years);
    let encoded_probs = report.encoded_bit_failure_probs(years);
    // The physics already orders the two storages bit by bit...
    for (k, (p, e)) in plain_probs.iter().zip(&encoded_probs).enumerate() {
        assert!(e <= p, "bit {k}: encoded prob {e} above plain {p}");
    }
    let loss_plain = loss_at(&plain_probs);
    let loss_encoded = loss_at(&encoded_probs);
    println!("plain {plain_probs:?} -> loss {loss_plain}%");
    println!("encoded {encoded_probs:?} -> loss {loss_encoded}%");

    // ...and the ordering survives all the way to measured accuracy:
    // the aged plain memory does real damage, the mitigated memory
    // recovers at least half of it.
    assert!(
        loss_plain > 5.0,
        "aged plain memory must measurably degrade accuracy, lost {loss_plain}%"
    );
    assert!(
        loss_encoded <= 0.5 * loss_plain,
        "mitigation must recover at least half the loss: plain {loss_plain}%, \
         encoded {loss_encoded}%"
    );
}
