//! Multiplier fault injection for aged-NPU accuracy studies.
//!
//! Reproduces the paper's Fig. 1b methodology (Section 3): since
//! post-synthesis timing simulation of a full DNN inference is
//! infeasible, aging-induced timing errors are emulated *at the
//! software level* by corrupting the products computed by the NPU's
//! multipliers. Two injectors are provided, both implementing the
//! [`MulModel`] hook of the quantized
//! inference path:
//!
//! * [`MsbFlipInjector`] — the paper's exact model: with probability
//!   `p`, flip one of the two most-significant bits of the product,
//! * [`ProfileInjector`] — measured per-bit flip probabilities (e.g.
//!   from `agequant-timing-sim`'s gate-level characterization of an
//!   aged multiplier), closing the device→circuit→system loop.
//!
//! # Example
//!
//! ```
//! use agequant_faults::MsbFlipInjector;
//! use agequant_nn::{ExactExecutor, NetArch, SyntheticDataset};
//! use agequant_quant::{quantize_model, BitWidths, QuantMethod};
//!
//! let model = NetArch::ResNet50.build(1);
//! let data = SyntheticDataset::generate(10, 2);
//! let q = quantize_model(&model, QuantMethod::MinMax, BitWidths::W8A8, &data.take(4));
//! let injector = MsbFlipInjector::new(1e-2, 16, 7);
//! let faulty = model.predict_all(&q.with_mul(&injector), data.images());
//! let clean = model.predict_all(&q, data.images());
//! // At p = 1e-2 the paper reports catastrophic degradation.
//! assert_eq!(clean.len(), faulty.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;

use agequant_quant::MulModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random bit flips in the two most-significant product bits.
///
/// The paper's injection model: each multiplication independently
/// suffers, with probability `prob`, a flip of one of the two MSBs of
/// the `product_bits`-wide result (each with equal probability).
#[derive(Debug)]
pub struct MsbFlipInjector {
    prob: f64,
    product_bits: u32,
    rng: RefCell<StdRng>,
    injected: RefCell<u64>,
}

impl MsbFlipInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `product_bits < 2`.
    #[must_use]
    pub fn new(prob: f64, product_bits: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        assert!(product_bits >= 2, "need at least two product bits");
        MsbFlipInjector {
            prob,
            product_bits,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            injected: RefCell::new(0),
        }
    }

    /// The configured flip probability.
    #[must_use]
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        *self.injected.borrow()
    }
}

impl MulModel for MsbFlipInjector {
    fn mul(&self, activation: u8, weight: u8) -> u32 {
        let exact = u32::from(activation) * u32::from(weight);
        if self.prob == 0.0 {
            return exact;
        }
        let mut rng = self.rng.borrow_mut();
        if rng.random_bool(self.prob) {
            let bit = self.product_bits - 1 - u32::from(rng.random_bool(0.5));
            *self.injected.borrow_mut() += 1;
            exact ^ (1 << bit)
        } else {
            exact
        }
    }
}

/// Bit flips following a measured per-bit probability profile.
///
/// `bit_probs[k]` is the independent probability of flipping product
/// bit `k` on each multiplication — typically the
/// `bit_flip_prob` vector measured by the gate-level aging
/// characterization (`agequant_timing_sim::characterize_multiplier`).
#[derive(Debug)]
pub struct ProfileInjector {
    bit_probs: Vec<f64>,
    rng: RefCell<StdRng>,
    injected: RefCell<u64>,
}

impl ProfileInjector {
    /// Creates an injector from a per-bit probability profile
    /// (index 0 = LSB of the product).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or the profile is
    /// wider than 32 bits.
    #[must_use]
    pub fn new(bit_probs: &[f64], seed: u64) -> Self {
        assert!(bit_probs.len() <= 32, "profile wider than the product");
        assert!(
            bit_probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probability out of range"
        );
        ProfileInjector {
            bit_probs: bit_probs.to_vec(),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            injected: RefCell::new(0),
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        *self.injected.borrow()
    }
}

impl MulModel for ProfileInjector {
    fn mul(&self, activation: u8, weight: u8) -> u32 {
        let mut product = u32::from(activation) * u32::from(weight);
        let mut rng = self.rng.borrow_mut();
        for (bit, &p) in self.bit_probs.iter().enumerate() {
            if p > 0.0 && rng.random_bool(p) {
                product ^= 1 << bit;
                *self.injected.borrow_mut() += 1;
            }
        }
        product
    }
}

/// Permanent stuck-at faults on product bits.
///
/// Unlike the probabilistic aging injectors, a stuck-at fault corrupts
/// *every* multiplication the same way — the model for hard defects
/// (manufacturing or electromigration opens) in one MAC of the array.
/// `stuck_high` bits read 1, `stuck_low` bits read 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtInjector {
    stuck_high: u32,
    stuck_low: u32,
}

impl StuckAtInjector {
    /// Creates an injector from OR/AND-NOT masks over product bits.
    ///
    /// # Panics
    ///
    /// Panics if a bit is both stuck high and stuck low.
    #[must_use]
    pub fn new(stuck_high: u32, stuck_low: u32) -> Self {
        assert_eq!(
            stuck_high & stuck_low,
            0,
            "a bit cannot be stuck both high and low"
        );
        StuckAtInjector {
            stuck_high,
            stuck_low,
        }
    }

    /// An injector with no faults (identity).
    #[must_use]
    pub fn healthy() -> Self {
        StuckAtInjector {
            stuck_high: 0,
            stuck_low: 0,
        }
    }
}

impl MulModel for StuckAtInjector {
    fn mul(&self, activation: u8, weight: u8) -> u32 {
        ((u32::from(activation) * u32::from(weight)) | self.stuck_high) & !self.stuck_low
    }
}

#[cfg(test)]
mod tests {
    use agequant_nn::{accuracy_loss_pct, NetArch, SyntheticDataset};
    use agequant_quant::{quantize_model_with, BitWidths, LapqRefineConfig, QuantMethod};

    use super::*;

    #[test]
    fn zero_probability_is_identity() {
        let inj = MsbFlipInjector::new(0.0, 16, 1);
        for (a, w) in [(0u8, 0u8), (255, 255), (17, 93)] {
            assert_eq!(inj.mul(a, w), u32::from(a) * u32::from(w));
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn certain_flip_always_corrupts_msbs() {
        let inj = MsbFlipInjector::new(1.0, 16, 1);
        for _ in 0..100 {
            let got = inj.mul(200, 200);
            let exact = 200u32 * 200;
            let diff = got ^ exact;
            assert!(diff == 1 << 15 || diff == 1 << 14, "diff {diff:#x}");
        }
        assert_eq!(inj.injected(), 100);
    }

    #[test]
    fn injection_rate_matches_probability() {
        let inj = MsbFlipInjector::new(0.1, 16, 42);
        let n = 20_000;
        for _ in 0..n {
            let _ = inj.mul(123, 45);
        }
        let rate = inj.injected() as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn profile_injector_respects_bits() {
        // Only bit 3 can flip.
        let mut probs = vec![0.0; 16];
        probs[3] = 1.0;
        let inj = ProfileInjector::new(&probs, 9);
        assert_eq!(inj.mul(10, 10), 100 ^ 8);
    }

    #[test]
    fn stuck_at_masks_apply() {
        let inj = StuckAtInjector::new(0b1000, 0b0001);
        // 3 × 3 = 9 = 0b1001 → set bit 3 (already), clear bit 0 → 8.
        assert_eq!(inj.mul(3, 3), 0b1000);
        // 2 × 2 = 4 = 0b100 → or 0b1000 → 0b1100.
        assert_eq!(inj.mul(2, 2), 0b1100);
        assert_eq!(StuckAtInjector::healthy().mul(7, 7), 49);
    }

    #[test]
    #[should_panic(expected = "stuck both")]
    fn conflicting_stuck_bits_rejected() {
        let _ = StuckAtInjector::new(0b10, 0b10);
    }

    #[test]
    fn msb_stuck_low_is_destructive() {
        let model = NetArch::AlexNet.build(3);
        let data = SyntheticDataset::generate(20, 11);
        let q = quantize_model_with(
            &model,
            QuantMethod::MinMax,
            BitWidths::W8A8,
            &data.take(4),
            &LapqRefineConfig::off(),
        );
        let clean = model.predict_all(&q, data.images());
        let stuck = StuckAtInjector::new(0, 1 << 15);
        let broken = model.predict_all(&q.with_mul(&stuck), data.images());
        // Clearing the product MSB on every multiply wrecks accuracy…
        let hard = accuracy_loss_pct(&clean, &broken);
        // …while a healthy injector is transparent.
        let same = model.predict_all(&q.with_mul(&StuckAtInjector::healthy()), data.images());
        assert_eq!(clean, same);
        assert!(hard > 20.0, "stuck MSB loss only {hard}%");
    }

    #[test]
    fn accuracy_degrades_with_flip_probability() {
        // Fig. 1b shape: higher p → lower accuracy, with p = 1e-2
        // catastrophic.
        let model = NetArch::ResNet50.build(3);
        let data = SyntheticDataset::generate(30, 11);
        let q = quantize_model_with(
            &model,
            QuantMethod::MinMax,
            BitWidths::W8A8,
            &data.take(4),
            &LapqRefineConfig::off(),
        );
        let clean = model.predict_all(&q, data.images());
        let loss_at = |p: f64| -> f64 {
            let inj = MsbFlipInjector::new(p, 16, 5);
            let noisy = model.predict_all(&q.with_mul(&inj), data.images());
            accuracy_loss_pct(&clean, &noisy)
        };
        let low = loss_at(1e-6);
        let high = loss_at(1e-2);
        assert!(high > 50.0, "p=1e-2 must be catastrophic, got {high}%");
        assert!(low < high, "low {low}% vs high {high}%");
    }
}
