//! Event-driven timed gate-level simulation and aging-error
//! characterization.
//!
//! The paper's Fig. 1a measures what happens when an *aged* 8-bit
//! multiplier is clocked at the *fresh* critical-path period without a
//! guardband: late-arriving transitions on long paths are latched
//! before they settle, producing timing errors concentrated in the
//! most-significant output bits. This crate reproduces that experiment:
//!
//! * [`TimedSim`] — an inertial-delay event-driven simulator over a
//!   netlist and an (aged) cell library: apply an input vector on top
//!   of the previous state, sample every output at the clock edge, and
//!   compare with the settled value,
//! * [`characterize_multiplier`] — the Fig. 1a harness: random vector
//!   pairs through an aged multiplier at the fresh clock, reporting the
//!   mean error distance (MED), per-bit flip probabilities, and the
//!   2-MSB flip probability the paper plots.
//!
//! # Example
//!
//! ```
//! use agequant_aging::{TechProfile, VthShift};
//! use agequant_cells::ProcessLibrary;
//! use agequant_netlist::multipliers::{multiplier, MultiplierArch};
//! use agequant_timing_sim::characterize_multiplier;
//!
//! let netlist = multiplier(8, 8, MultiplierArch::Wallace);
//! let process = ProcessLibrary::finfet14nm();
//! let derating = TechProfile::INTEL14NM.derating();
//! let fresh = characterize_multiplier(&netlist, &process, &derating, VthShift::FRESH, 500, 42);
//! assert_eq!(fresh.med, 0.0, "a fresh multiplier at its own period never errs");
//! let aged = characterize_multiplier(
//!     &netlist, &process, &derating, VthShift::from_millivolts(50.0), 500, 42);
//! assert!(aged.med > 0.0, "end-of-life aging causes timing errors");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error_char;
mod sim;

pub use error_char::{characterize_multiplier, MultiplierAgingErrors};
pub use sim::{SimOutcome, TimedSim};
