//! Fig. 1a harness: aged-multiplier timing-error characterization.

use std::collections::BTreeMap;

use agequant_aging::{DelayDerating, VthShift};
use agequant_cells::ProcessLibrary;
use agequant_netlist::Netlist;
use agequant_sta::Sta;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TimedSim;

/// Timing-error statistics of an aged multiplier clocked at the fresh
/// critical-path period (no guardband), as plotted in the paper's
/// Fig. 1a.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplierAgingErrors {
    /// The aging level characterized.
    pub vth_shift: VthShift,
    /// The sampling period used (fresh critical path), ps.
    pub clock_ps: f64,
    /// Mean error distance: average `|latched − exact|` over vectors.
    pub med: f64,
    /// Fraction of vectors with any erroneous output bit.
    pub error_rate: f64,
    /// Per-output-bit flip probability (index 0 = LSB).
    pub bit_flip_prob: Vec<f64>,
    /// Probability that at least one of the two MSBs flipped —
    /// the quantity Fig. 1a tracks alongside MED.
    pub msb2_flip_prob: f64,
    /// Number of random vectors evaluated.
    pub samples: usize,
}

/// Characterizes an `m × n` multiplier netlist (buses `a`, `b` → `p`)
/// at aging level `shift`, clocked at the *fresh* critical path of the
/// same netlist — the exact Fig. 1a setup ("no timing guardbands are
/// used in this investigation").
///
/// Random uniform input pairs are applied back-to-back (each vector's
/// initial state is the previous vector's settled state), outputs are
/// latched at the fresh-period clock edge, and deviations from the
/// settled (exact) product are accumulated.
///
/// # Panics
///
/// Panics if the netlist lacks `a`/`b` input buses or a `p` output bus,
/// or if `samples` is zero.
#[must_use]
pub fn characterize_multiplier(
    netlist: &Netlist,
    process: &ProcessLibrary,
    derating: &DelayDerating,
    shift: VthShift,
    samples: usize,
    seed: u64,
) -> MultiplierAgingErrors {
    assert!(samples > 0, "need at least one sample");
    let a_width = netlist
        .input_bus("a")
        .expect("multiplier needs an `a` bus")
        .width();
    let b_width = netlist
        .input_bus("b")
        .expect("multiplier needs a `b` bus")
        .width();
    let p_width = netlist
        .output_bus("p")
        .expect("multiplier needs a `p` bus")
        .width();

    // Fresh clock: critical path of the un-aged circuit, zero slack.
    let fresh_lib = process.characterize(derating, VthShift::FRESH);
    let clock_ps = Sta::new(netlist, &fresh_lib)
        .analyze_uncompressed()
        .critical_path_ps;

    let aged_lib = process.characterize(derating, shift);
    let sim = TimedSim::new(netlist, &aged_lib);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = sim.settled_state(&BTreeMap::from([
        ("a".to_string(), 0u64),
        ("b".to_string(), 0u64),
    ]));

    let mut sum_err = 0.0f64;
    let mut erroneous = 0usize;
    let mut bit_flips = vec![0usize; p_width];
    let mut msb2_flips = 0usize;

    for _ in 0..samples {
        let a: u64 = rng.random_range(0..(1u64 << a_width));
        let b: u64 = rng.random_range(0..(1u64 << b_width));
        let out = sim.run(
            &mut state,
            &BTreeMap::from([("a".to_string(), a), ("b".to_string(), b)]),
            clock_ps,
        );
        let latched = out.sampled["p"];
        let exact = out.settled["p"];
        debug_assert_eq!(exact, a * b, "gate netlist must settle to the product");
        sum_err += (latched.abs_diff(exact)) as f64;
        let diff = latched ^ exact;
        if diff != 0 {
            erroneous += 1;
            for (bit, flips) in bit_flips.iter_mut().enumerate() {
                if (diff >> bit) & 1 == 1 {
                    *flips += 1;
                }
            }
            if diff >> (p_width - 2) != 0 {
                msb2_flips += 1;
            }
        }
    }

    let n = samples as f64;
    MultiplierAgingErrors {
        vth_shift: shift,
        clock_ps,
        med: sum_err / n,
        error_rate: erroneous as f64 / n,
        bit_flip_prob: bit_flips.iter().map(|&f| f as f64 / n).collect(),
        msb2_flip_prob: msb2_flips as f64 / n,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use agequant_aging::TechProfile;
    use agequant_netlist::multipliers::{multiplier, MultiplierArch};

    use super::*;

    fn mult8() -> Netlist {
        multiplier(8, 8, MultiplierArch::Wallace)
    }

    #[test]
    fn fresh_multiplier_has_zero_errors() {
        let stats = characterize_multiplier(
            &mult8(),
            &ProcessLibrary::finfet14nm(),
            &TechProfile::INTEL14NM.derating(),
            VthShift::FRESH,
            200,
            7,
        );
        assert_eq!(stats.med, 0.0);
        assert_eq!(stats.error_rate, 0.0);
        assert_eq!(stats.msb2_flip_prob, 0.0);
    }

    #[test]
    fn errors_grow_with_aging() {
        let process = ProcessLibrary::finfet14nm();
        let netlist = mult8();
        let m20 = characterize_multiplier(
            &netlist,
            &process,
            &TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(20.0),
            300,
            7,
        );
        let m50 = characterize_multiplier(
            &netlist,
            &process,
            &TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(50.0),
            300,
            7,
        );
        assert!(m50.med >= m20.med);
        assert!(m50.med > 0.0, "end-of-life must produce errors");
        assert!(m50.error_rate > 0.0);
    }

    #[test]
    fn errors_concentrate_in_msbs() {
        // Aging errors hit long paths, which terminate in high-order
        // output bits (Section 3 of the paper).
        let stats = characterize_multiplier(
            &mult8(),
            &ProcessLibrary::finfet14nm(),
            &TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(50.0),
            400,
            13,
        );
        let lsb_half: f64 = stats.bit_flip_prob[..8].iter().sum();
        let msb_half: f64 = stats.bit_flip_prob[8..].iter().sum();
        assert!(
            msb_half > lsb_half,
            "MSB flips {msb_half} should exceed LSB flips {lsb_half}"
        );
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let process = ProcessLibrary::finfet14nm();
        let netlist = mult8();
        let a = characterize_multiplier(
            &netlist,
            &process,
            &TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(30.0),
            100,
            5,
        );
        let b = characterize_multiplier(
            &netlist,
            &process,
            &TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(30.0),
            100,
            5,
        );
        assert_eq!(a, b);
    }
}
