//! The inertial-delay event-driven simulator.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use agequant_cells::CellLibrary;
use agequant_netlist::{NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Load (fF) assumed on primary outputs — matches the STA assumption so
/// simulated arrivals line up with reported critical paths.
const OUTPUT_PORT_LOAD_FF: f64 = 1.2;

/// One scheduled value change. Ordered for a min-heap on time with a
/// sequence number as tiebreaker (FIFO among simultaneous events).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_ps: f64,
    seq: u64,
    net: NetId,
    value: bool,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest first.
        other
            .time_ps
            .partial_cmp(&self.time_ps)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The result of simulating one input-vector transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Output-bus values latched at the sampling (clock) edge.
    pub sampled: BTreeMap<String, u64>,
    /// Output-bus values after the circuit fully settles.
    pub settled: BTreeMap<String, u64>,
    /// Simulation time of the last value change, ps.
    pub settle_time_ps: f64,
    /// Total value-change events processed.
    pub events: usize,
    /// Per-net transition counts (for power estimation with glitches).
    pub toggles: Vec<u32>,
}

impl SimOutcome {
    /// Whether the sampled and settled values differ anywhere — i.e.
    /// the clock edge latched a timing error.
    #[must_use]
    pub fn has_timing_error(&self) -> bool {
        self.sampled != self.settled
    }
}

/// An inertial-delay event-driven gate-level simulator.
///
/// Each gate arc contributes its library delay at the net's capacitive
/// load. Delays are *inertial*: a newly computed output transition
/// cancels any still-pending one on the same net, so pulses shorter
/// than a gate's delay are filtered — the behaviour of real CMOS gates
/// and of HDL simulators in inertial mode. See the
/// [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct TimedSim<'a> {
    netlist: &'a Netlist,
    library: &'a CellLibrary,
    loads: Vec<f64>,
}

impl<'a> TimedSim<'a> {
    /// Binds a netlist to a characterized cell library.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary) -> Self {
        let mut loads = vec![0.0f64; netlist.net_count()];
        for gate in netlist.gates() {
            for &input in &gate.inputs {
                loads[input.index()] += library.input_cap(gate.kind);
            }
        }
        for out in netlist.primary_outputs() {
            loads[out.index()] += OUTPUT_PORT_LOAD_FF;
        }
        TimedSim {
            netlist,
            library,
            loads,
        }
    }

    /// Computes the settled net state for an input assignment
    /// (zero-delay evaluation) — used to initialize vector sequences.
    ///
    /// # Panics
    ///
    /// Panics if an input bus is missing or a value does not fit.
    #[must_use]
    pub fn settled_state(&self, inputs: &BTreeMap<String, u64>) -> Vec<bool> {
        let mut values = vec![false; self.netlist.net_count()];
        for bus in self.netlist.input_buses() {
            let value = *inputs
                .get(&bus.name)
                .unwrap_or_else(|| panic!("missing value for input bus {}", bus.name));
            for (bit, &net) in bus.nets.iter().enumerate() {
                values[net.index()] = (value >> bit) & 1 == 1;
            }
        }
        self.netlist.eval_nets(&mut values);
        values
    }

    /// Simulates applying `inputs` at `t = 0` on top of a settled
    /// `state` (as produced by [`settled_state`](Self::settled_state)
    /// or a previous [`run`](Self::run)), sampling all outputs at
    /// `sample_ps`. On return, `state` holds the new settled values.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length, an input bus is missing,
    /// or `sample_ps` is negative.
    pub fn run(
        &self,
        state: &mut [bool],
        inputs: &BTreeMap<String, u64>,
        sample_ps: f64,
    ) -> SimOutcome {
        assert_eq!(state.len(), self.netlist.net_count(), "state length");
        assert!(sample_ps >= 0.0, "sample time must be non-negative");

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Inertial-delay semantics: a newly scheduled transition on a
        // net cancels any pending one (sub-delay pulses are filtered,
        // as in a real gate). `authoritative[net]` holds the sequence
        // number of the only event allowed to fire for that net.
        let mut authoritative: Vec<Option<u64>> = vec![None; self.netlist.net_count()];
        let mut seq = 0u64;

        // Schedule primary-input changes at t = 0.
        for bus in self.netlist.input_buses() {
            let value = *inputs
                .get(&bus.name)
                .unwrap_or_else(|| panic!("missing value for input bus {}", bus.name));
            for (bit, &net) in bus.nets.iter().enumerate() {
                let v = (value >> bit) & 1 == 1;
                if state[net.index()] != v {
                    heap.push(Event {
                        time_ps: 0.0,
                        seq,
                        net,
                        value: v,
                    });
                    authoritative[net.index()] = Some(seq);
                    seq += 1;
                }
            }
        }

        // Sampled values start at the pre-transition state.
        let mut sampled_state = state.to_vec();
        let mut toggles = vec![0u32; self.netlist.net_count()];
        let mut events = 0usize;
        let mut settle_time_ps = 0.0f64;
        let mut pins: Vec<bool> = Vec::with_capacity(3);

        while let Some(ev) = heap.pop() {
            if authoritative[ev.net.index()] != Some(ev.seq) {
                continue; // cancelled by a fresher recomputation
            }
            authoritative[ev.net.index()] = None;
            if state[ev.net.index()] == ev.value {
                continue; // no actual transition
            }
            events += 1;
            settle_time_ps = settle_time_ps.max(ev.time_ps);
            state[ev.net.index()] = ev.value;
            toggles[ev.net.index()] += 1;
            if ev.time_ps <= sample_ps {
                sampled_state[ev.net.index()] = ev.value;
            }
            for &(gate_id, pin) in self.netlist.fanout(ev.net) {
                let gate = self.netlist.gate(gate_id);
                pins.clear();
                pins.extend(gate.inputs.iter().map(|n| state[n.index()]));
                let new_out = gate.kind.eval(&pins);
                let out_idx = gate.output.index();
                // Schedule only when the target differs from the
                // current value or a pending event must be replaced.
                if new_out != state[out_idx] || authoritative[out_idx].is_some() {
                    let delay = self.library.arc_delay(gate.kind, pin, self.loads[out_idx]);
                    heap.push(Event {
                        time_ps: ev.time_ps + delay,
                        seq,
                        net: gate.output,
                        value: new_out,
                    });
                    authoritative[out_idx] = Some(seq);
                    seq += 1;
                }
            }
        }

        let read_bus = |values: &[bool], bus: &agequant_netlist::Bus| {
            let mut v = 0u64;
            for (bit, &net) in bus.nets.iter().enumerate() {
                v |= u64::from(values[net.index()]) << bit;
            }
            v
        };
        let mut sampled = BTreeMap::new();
        let mut settled = BTreeMap::new();
        for bus in self.netlist.output_buses() {
            sampled.insert(bus.name.clone(), read_bus(&sampled_state, bus));
            settled.insert(bus.name.clone(), read_bus(state, bus));
        }
        SimOutcome {
            sampled,
            settled,
            settle_time_ps,
            events,
            toggles,
        }
    }
}

#[cfg(test)]
mod tests {
    use agequant_aging::VthShift;
    use agequant_cells::ProcessLibrary;
    use agequant_netlist::multipliers::{multiplier, MultiplierArch};
    use agequant_sta::Sta;

    use super::*;

    fn lib(mv: f64) -> agequant_cells::CellLibrary {
        ProcessLibrary::finfet14nm().characterize(
            &agequant_aging::TechProfile::INTEL14NM.derating(),
            VthShift::from_millivolts(mv),
        )
    }

    #[test]
    fn settled_values_match_functional_eval() {
        let netlist = multiplier(4, 4, MultiplierArch::Wallace);
        let library = lib(0.0);
        let sim = TimedSim::new(&netlist, &library);
        let mut state = sim.settled_state(&BTreeMap::from([
            ("a".to_string(), 3),
            ("b".to_string(), 5),
        ]));
        let out = sim.run(
            &mut state,
            &BTreeMap::from([("a".to_string(), 13), ("b".to_string(), 11)]),
            1e9, // sample far after settling
        );
        assert_eq!(out.settled["p"], 13 * 11);
        assert_eq!(out.sampled["p"], 13 * 11);
        assert!(!out.has_timing_error());
    }

    #[test]
    fn settle_time_matches_sta_bound() {
        // The event-driven settle time never exceeds the STA critical
        // path (STA is the worst case over all vectors).
        let netlist = multiplier(8, 8, MultiplierArch::Wallace);
        let library = lib(0.0);
        let sim = TimedSim::new(&netlist, &library);
        let sta = Sta::new(&netlist, &library);
        let cp = sta.analyze_uncompressed().critical_path_ps;
        let mut state = sim.settled_state(&BTreeMap::from([
            ("a".to_string(), 0),
            ("b".to_string(), 0),
        ]));
        for (a, b) in [(255u64, 255u64), (170, 85), (1, 255), (254, 253)] {
            let out = sim.run(
                &mut state,
                &BTreeMap::from([("a".to_string(), a), ("b".to_string(), b)]),
                1e9,
            );
            assert_eq!(out.settled["p"], a * b);
            assert!(
                out.settle_time_ps <= cp + 1e-6,
                "settle {} > STA {}",
                out.settle_time_ps,
                cp
            );
        }
    }

    #[test]
    fn early_sampling_latches_stale_values() {
        let netlist = multiplier(8, 8, MultiplierArch::Wallace);
        let library = lib(0.0);
        let sim = TimedSim::new(&netlist, &library);
        let mut state = sim.settled_state(&BTreeMap::from([
            ("a".to_string(), 0),
            ("b".to_string(), 0),
        ]));
        // Sampling at t = 0 keeps the previous outputs entirely.
        let out = sim.run(
            &mut state,
            &BTreeMap::from([("a".to_string(), 255), ("b".to_string(), 255)]),
            0.0,
        );
        assert_eq!(out.sampled["p"], 0);
        assert_eq!(out.settled["p"], 255 * 255);
        assert!(out.has_timing_error());
    }

    #[test]
    fn aged_library_settles_slower() {
        let netlist = multiplier(8, 8, MultiplierArch::Wallace);
        let fresh = lib(0.0);
        let aged = lib(50.0);
        let vectors = BTreeMap::from([("a".to_string(), 255u64), ("b".to_string(), 255u64)]);
        let zero = BTreeMap::from([("a".to_string(), 0u64), ("b".to_string(), 0u64)]);

        let sim_f = TimedSim::new(&netlist, &fresh);
        let mut st = sim_f.settled_state(&zero);
        let t_fresh = sim_f.run(&mut st, &vectors, 1e9).settle_time_ps;

        let sim_a = TimedSim::new(&netlist, &aged);
        let mut st = sim_a.settled_state(&zero);
        let t_aged = sim_a.run(&mut st, &vectors, 1e9).settle_time_ps;
        assert!(t_aged > t_fresh * 1.1, "{t_aged} vs {t_fresh}");
    }

    #[test]
    fn toggle_counts_are_positive_on_activity() {
        let netlist = multiplier(4, 4, MultiplierArch::Array);
        let library = lib(0.0);
        let sim = TimedSim::new(&netlist, &library);
        let mut state = sim.settled_state(&BTreeMap::from([
            ("a".to_string(), 0),
            ("b".to_string(), 0),
        ]));
        let out = sim.run(
            &mut state,
            &BTreeMap::from([("a".to_string(), 15), ("b".to_string(), 15)]),
            1e9,
        );
        assert!(out.toggles.iter().map(|&t| u64::from(t)).sum::<u64>() > 0);
        assert!(out.events > 0);
    }
}
