//! Minimal readiness polling over `poll(2)`.
//!
//! `agequant-serve` multiplexes thousands of keep-alive connections on
//! a handful of event-loop threads. The standard library exposes
//! non-blocking sockets but no readiness notification, so this crate
//! wraps the one missing primitive: a single `poll(2)` call over a
//! caller-owned slice of interest records. std already links the C
//! runtime on every supported target, so the binding is a bare
//! `extern "C"` declaration — no external crate involved.
//!
//! This is deliberately the *entire* API: no registry, no opaque
//! tokens, no edge-triggering. The caller rebuilds the (small,
//! cache-resident) pollfd slice each iteration, which keeps the shim
//! trivially correct and the event loop's state in exactly one place.
//!
//! The `unsafe` in this crate is the only `unsafe` in the workspace;
//! every dependent crate keeps `#![forbid(unsafe_code)]`.

#![deny(unsafe_op_in_unsafe_fn)]

use std::io;

/// Readiness flags, matching the Linux/POSIX `poll.h` constants.
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a `poll(2)` interest set.
///
/// Layout is pinned to the C `struct pollfd` so a `&mut [PollFd]`
/// can be handed to the kernel directly.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest record for `fd` with an explicit event mask
    /// (a bitwise-or of [`POLLIN`] / [`POLLOUT`]).
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Interest in readability only.
    pub fn readable(fd: i32) -> Self {
        Self::new(fd, POLLIN)
    }

    /// Interest in writability only.
    pub fn writable(fd: i32) -> Self {
        Self::new(fd, POLLOUT)
    }

    /// The fd this record polls.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Did the kernel report the fd readable (or at EOF)?
    pub fn is_readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP) != 0
    }

    /// Did the kernel report the fd writable?
    pub fn is_writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Did the kernel report an error, hangup, or invalid fd?
    pub fn is_error(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Any event at all (the fd needs servicing this iteration).
    pub fn is_ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::ffi::{c_int, c_ulong};
    use std::io;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `PollFd` is `#[repr(C)]` with the exact layout of
            // `struct pollfd`; the pointer/length pair comes from a live
            // mutable slice, and the kernel writes only within it.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    pub fn poll_impl(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) readiness is only available on unix targets",
        ))
    }
}

/// Block until at least one fd in `fds` is ready, `timeout_ms`
/// elapses (`0` = return immediately, `-1` = no timeout), or a
/// non-EINTR error occurs. Returns the number of ready records;
/// inspect each entry's `is_*` accessors to find them. EINTR is
/// retried internally so callers never see spurious wakeups from
/// signals.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    sys::poll_impl(fds, timeout_ms)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn empty_set_times_out_immediately() {
        assert_eq!(poll(&mut [], 0).expect("poll"), 0);
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut fds = [PollFd::readable(listener.as_raw_fd())];
        assert_eq!(poll(&mut fds, 0).expect("poll"), 0, "no pending connect");
        assert!(!fds[0].is_ready());

        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let ready = poll(&mut fds, 5_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].is_readable());
        assert!(!fds[0].is_error());
    }

    #[test]
    fn connected_stream_is_writable_and_peer_close_is_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN | POLLOUT)];
        let ready = poll(&mut fds, 5_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].is_writable(), "fresh socket has send-buffer space");
        assert!(!fds[0].is_readable(), "nothing to read yet");

        drop(server);
        client.flush().expect("flush");
        let mut fds = [PollFd::readable(client.as_raw_fd())];
        let ready = poll(&mut fds, 5_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].is_readable(), "EOF reads as readable");
    }
}
