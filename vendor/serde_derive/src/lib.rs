//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` shim's value-tree `Serialize` /
//! `Deserialize` traits. Since neither `syn` nor `quote` is available
//! offline, the item is parsed directly from the raw token stream.
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Not supported (the derive panics with a clear message): generic
//! parameters and `#[serde(...)]` attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree conversion).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// The shape of a struct body or an enum variant payload.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(peek_punct(&tokens, i), Some('<')) {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde shim derive: malformed enum `{name}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                *i += 1;
                continue;
            }
        }
        panic!("serde shim derive: malformed attribute");
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], i: usize) -> Option<char> {
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Advances past one type (or expression), stopping at a top-level
/// comma. Tracks `<`/`>` nesting manually; parenthesized and
/// bracketed subtrees arrive as single `Group` tokens. A `>` that
/// closes a `->` return arrow is ignored via one-punct lookbehind.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = expect_ident(&tokens, &mut i);
        match peek_punct(&tokens, i) {
            Some(':') => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_to_top_level_comma(&tokens, &mut i);
        if matches!(peek_punct(&tokens, i), Some(',')) {
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_top_level_comma(&tokens, &mut i);
        if matches!(peek_punct(&tokens, i), Some(',')) {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let shape = Shape::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                shape
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let shape = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                shape
            }
            _ => Shape::Unit,
        };
        if matches!(peek_punct(&tokens, i), Some('=')) {
            // Explicit discriminant: skip its expression.
            i += 1;
            skip_to_top_level_comma(&tokens, &mut i);
        }
        if matches!(peek_punct(&tokens, i), Some(',')) {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                // Newtype structs serialize transparently, like upstream.
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => \
                                 ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match __value {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(\n\
                             ::std::format!(\"{name}: expected null, found {{__other:?}}\"))),\n\
                     }}"
                ),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__value)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    format!(
                        "let __s = ::serde::__get_seq(__value, {n}, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\", \"{name}\")?"))
                        .collect();
                    format!(
                        "let __m = ::serde::__get_map(__value, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                        }
                        Shape::Tuple(n) => {
                            let payload = if *n == 1 {
                                format!(
                                    "::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_value(__p)?))"
                                )
                            } else {
                                let items: Vec<String> = (0..*n)
                                    .map(|k| {
                                        format!("::serde::Deserialize::from_value(&__s[{k}])?")
                                    })
                                    .collect();
                                format!(
                                    "let __s = ::serde::__get_seq(__p, {n}, \
                                     \"{name}::{vname}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::msg(\n\
                                         \"{name}::{vname}: missing payload\"))?;\n\
                                     {payload}\n\
                                 }}"
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__field(__m, \"{f}\", \
                                         \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::Error::msg(\n\
                                         \"{name}::{vname}: missing payload\"))?;\n\
                                     let __m = ::serde::__get_map(__p, \"{name}::{vname}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__tag, __payload) = ::serde::__variant(__value, \"{name}\")?;\n\
                         let _ = &__payload; // unused when every variant is a unit\n\
                         match __tag {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::__unknown_variant(\"{name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}
