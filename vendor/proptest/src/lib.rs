//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic miniature of the proptest API surface it
//! uses: the [`proptest!`] macro over `pattern in strategy` arguments,
//! range and [`any`] strategies, `prop::sample::select`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design: cases are drawn from a fixed
//! seed (fully reproducible runs), and failing inputs are reported
//! but not shrunk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value drawn.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types drawable uniformly over their whole domain via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy drawing any value of `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `prop::sample`: drawing from explicit collections.
pub mod sample {
    use super::{Debug, RngExt, StdRng, Strategy};

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }

    /// Draws uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }
}

/// `prop::collection`: strategies for containers.
pub mod collection {
    use super::{Debug, Range, RngExt, StdRng, Strategy};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Draws vectors whose length lies in `size`, with elements from
    /// `element`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

/// The glob-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Derives the per-case RNG. Seeds mix a fixed constant with the test
/// name and case index, so every test sees an independent but fully
/// reproducible stream.
#[doc(hidden)]
#[must_use]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ 0x5DEE_CE66_D1CE_CAFE)
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`
/// blocks, each expanded to a `#[test]` running `cases` sampled
/// executions (optionally configured with a leading
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                let __described = format!(
                    concat!("case #{}: ", $(stringify!($arg), " = {:?}, ",)* "<end>"),
                    __case, $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(panic) = __outcome {
                    eprintln!("proptest failure in {} [{}]", stringify!($name), __described);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Asserts a property, failing the current case when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        prop::sample::select(vec![0u32, 2, 4, 6])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn select_draws_members(e in evens(), raw in any::<u64>()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(raw == raw);
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_test_and_case() {
        use rand::RngExt;
        let mut a = crate::__case_rng("t", 3);
        let mut b = crate::__case_rng("t", 3);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = crate::__case_rng("t", 4);
        let mut d = crate::__case_rng("u", 3);
        assert_ne!(b.random::<u64>(), c.random::<u64>());
        assert_ne!(c.random::<u64>(), d.random::<u64>());
    }
}
