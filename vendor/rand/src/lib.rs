//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the subset of
//! the rand 0.10 API it uses: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`RngExt`] extension methods `random`, `random_bool`, and
//! `random_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 stream upstream `StdRng` uses, so absolute sequences
//! differ from upstream, but every consumer in this workspace only
//! relies on *determinism for a fixed seed* and sound uniform
//! statistics, both of which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 state
    /// expansion (matches the upstream trait method of the same name).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: expands a 64-bit seed into a stream of
/// well-distributed words (the reference xoshiro seeding procedure).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**, a small-state all-purpose PRNG that passes
    /// BigCrush).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly from raw generator output
/// (`rng.random::<T>()`), the analogue of the upstream
/// `StandardUniform` distribution.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; fold it
                // back to keep the half-open contract.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing convenience methods (`rand::RngExt`).
pub trait RngExt: RngCore {
    /// A uniform value of type `T` (`bool`, `u32`, `u64`, or a unit
    /// `f64`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
