//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature data-parallelism library with the rayon API
//! shapes it uses: `par_iter()` on slices, `into_par_iter()` on
//! vectors and ranges, `map`, `collect::<Vec<_>>()`, and [`join`].
//!
//! Execution model: every pipeline is *indexed* — the source knows
//! its length and can produce the item at any index — so a work-
//! stealing loop over an atomic index counter hands items to scoped
//! `std::thread` workers while results land in their original slots.
//! **Output order therefore always equals input order**, which the
//! evaluation engine relies on for bit-identical serial/parallel
//! results. Worker count adapts to `std::thread::available_parallelism`
//! and can be capped with the `RAYON_NUM_THREADS` environment
//! variable (1 disables threading entirely).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("joined closure panicked");
        (ra, rb)
    })
}

fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// An indexed parallel pipeline: a source of `len` items addressable
/// by position, plus any stacked `map` stages.
pub trait ParallelIterator: Sized + Sync {
    /// The element type this pipeline yields.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the pipeline is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index` (called once per index).
    fn item_at(&self, index: usize) -> Self::Item;

    /// Applies `f` to every item in parallel, preserving order.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and gathers results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types buildable from a parallel pipeline.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Executes `iter` and collects its output.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        run(&iter)
    }
}

/// Executes an indexed pipeline across scoped worker threads. Items
/// are claimed one at a time from an atomic counter (dynamic load
/// balancing for unevenly priced items) and stored at their source
/// index, so the output order is deterministic.
fn run<P: ParallelIterator>(pipeline: &P) -> Vec<P::Item> {
    let n = pipeline.len();
    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(|i| pipeline.item_at(i)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<P::Item>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let item = pipeline.item_at(index);
                *slots[index].lock().expect("unpoisoned result slot") = Some(item);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("every index was produced")
        })
        .collect()
}

/// A `map` stage over another pipeline.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

/// A pipeline reading `&T` items from a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item_at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// A pipeline cloning items out of an owned vector.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item_at(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

/// A pipeline yielding the values of an integer range.
pub struct RangeParIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }

            fn item_at(&self, index: usize) -> $t {
                self.range.start + index as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;

            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter { range: self }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Conversion into an owned parallel pipeline (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Element type of the resulting pipeline.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consumes `self` into a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Borrowing conversion to a parallel pipeline (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type of the resulting pipeline (a reference).
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrows `self` as a parallel pipeline.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// The glob-import prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_pipelines_match_serial() {
        let squares: Vec<usize> = (0usize..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0usize..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn owned_vec_pipeline_clones_items() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.clone().into_par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_pipelines_work() {
        let grid: Vec<Vec<usize>> = (0usize..8)
            .into_par_iter()
            .map(|r| (0usize..8).into_par_iter().map(|c| r * 8 + c).collect())
            .collect();
        let flat: Vec<usize> = grid.into_iter().flatten().collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
    }
}
