//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small value-tree serialization framework exposing the
//! serde surface it uses: the [`Serialize`] / [`Deserialize`] traits,
//! `serde::de::DeserializeOwned`, and `#[derive(Serialize,
//! Deserialize)]` (from the sibling `serde_derive` shim).
//!
//! Instead of upstream's visitor-based zero-copy data model, types
//! convert to and from an owned [`Value`] tree; `serde_json` (also
//! vendored) renders that tree to JSON text and parses it back. The
//! derive follows upstream's externally-tagged conventions — unit
//! variants as strings, newtype variants as single-entry objects,
//! newtype structs as their inner value — so the JSON written by the
//! experiment binaries looks exactly as it would under real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: an owned JSON-shaped tree.
///
/// Map keys are eagerly converted to strings (as JSON requires);
/// integer and unit-variant keys survive a round trip through
/// [`key_from_string`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every negative and small positive int).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: owned deserialization marker.
pub mod de {
    /// Marker for types deserializable without borrowing input —
    /// every [`Deserialize`](crate::Deserialize) type here, since the
    /// data model is owned.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// `Value` is its own data model: serializing is a clone, so callers
// can hand-build JSON trees (upstream's `serde_json::Value` idiom).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range")))?,
                    other => return Err(type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range")))?,
                    other => return Err(type_mismatch(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value).and_then(|u| {
            usize::try_from(u).map_err(|_| Error::msg(format!("{u} out of range for usize")))
        })
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).and_then(|i| {
            isize::try_from(i).map_err(|_| Error::msg(format!("{i} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Widening is exact, so the f64 shortest-round-trip text
        // reproduces this f32 bit-for-bit on the way back.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_mismatch("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(type_mismatch("char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(type_mismatch("unit", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected tuple of {expected}, got {}", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(type_mismatch("tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Converts a serialized map key to its JSON string form. Strings
/// pass through; integers and unit enum variants (which serialize as
/// strings already) stringify, matching upstream serde_json.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!(
            "map key must be string-like: {other:?}"
        ))),
    }
}

/// Recovers a typed map key from its JSON string form, inverting
/// [`key_to_string`] by trying the string, unsigned, signed, and
/// boolean interpretations in order.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_value()).expect("serializable map key"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(type_mismatch("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by key text.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(&k.to_value()).expect("serializable map key"),
                    v.to_value(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(type_mismatch("map", other)),
        }
    }
}

fn type_mismatch(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    };
    Error::msg(format!("expected {expected}, found {kind}"))
}

// ---------------------------------------------------------------------
// Support entry points for `#[derive(Serialize, Deserialize)]` output.
// Hidden from docs like upstream's `serde::__private`.
// ---------------------------------------------------------------------

/// Derive support: views a value as an object's entry list.
#[doc(hidden)]
pub fn __get_map<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(Error::msg(format!(
            "{ty}: expected object, found {:?}",
            other
        ))),
    }
}

/// Derive support: extracts and deserializes one named struct field.
/// A missing field falls back to deserializing `null`, which succeeds
/// exactly for `Option` fields (upstream's implicit-`None` behavior).
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{name}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::msg(format!("{ty}: missing field `{name}`"))),
    }
}

/// Derive support: views a value as a sequence of exactly `n` items.
#[doc(hidden)]
pub fn __get_seq<'a>(value: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], Error> {
    match value {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error::msg(format!(
            "{ty}: expected {n} elements, found {}",
            items.len()
        ))),
        other => Err(Error::msg(format!(
            "{ty}: expected sequence, found {other:?}"
        ))),
    }
}

/// Derive support: splits an externally-tagged enum value into its
/// variant name and payload. Unit variants arrive as plain strings
/// (payload `None`); every other variant as a single-entry object.
#[doc(hidden)]
pub fn __variant<'a>(value: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
    match value {
        Value::Str(name) => Ok((name, None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(Error::msg(format!(
            "{ty}: expected variant tag, found {other:?}"
        ))),
    }
}

/// Derive support: the error for an unrecognized variant tag.
#[doc(hidden)]
#[must_use]
pub fn __unknown_variant(ty: &str, tag: &str) -> Error {
    Error::msg(format!("{ty}: unknown variant `{tag}`"))
}
