//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock benchmarking harness exposing the
//! criterion API surface its benches use: [`Criterion`],
//! [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — per sample, the harness times
//! a batch of iterations and reports the min / median / max of the
//! per-iteration means. No warm-up persistence, baselines, or HTML
//! reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver: configuration plus result reporting.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (min 10).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(10);
        self
    }

    /// Sets the time budget spread over the measurement samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration preceding measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line overrides. The shim accepts and ignores
    /// the harness arguments cargo-bench passes (`--bench`, filters).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine untimed for the configured period.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let mut per_iter_estimate = Duration::from_micros(1);
        while Instant::now() < warm_until {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed > Duration::ZERO {
                per_iter_estimate = bencher.elapsed.max(Duration::from_nanos(1));
            }
        }

        // Choose an iteration count per sample so all samples fit the
        // measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (budget_per_sample.as_nanos() / per_iter_estimate.as_nanos().max(1))
            .clamp(1, u128::from(u32::MAX)) as u64;

        let mut means: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            means.push(bencher.elapsed / iters_per_sample.max(1) as u32);
        }
        means.sort();
        let lo = means.first().copied().unwrap_or_default();
        let mid = means[means.len() / 2];
        let hi = means.last().copied().unwrap_or_default();
        println!(
            "{id:<40} time: [{} {} {}] ({} samples × {} iters)",
            fmt_duration(lo),
            fmt_duration(mid),
            fmt_duration(hi),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group of benchmark functions, with or without a custom
/// configuration block.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
