//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` shim's [`Value`] tree to JSON text
//! and parses it back: [`to_string`], [`to_string_pretty`], and
//! [`from_str`]. Numbers print through Rust's shortest-round-trip
//! float formatting, so `f64`/`f32` survive a text round trip
//! bit-for-bit (the guarantee upstream's `float_roundtrip` feature
//! provides).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{de::DeserializeOwned, Serialize, Value};

pub use serde::Error;

/// A JSON (de)serialization result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats (JSON has no lexeme for
/// them, matching upstream behavior).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent a non-finite float"));
            }
            // Rust's Display prints the shortest digits that parse
            // back to the same f64; add `.0` to keep integral floats
            // typed as numbers-with-fraction like upstream does.
            let text = f.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("lone leading surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid trailing surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n != b'"' && n != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn floats_survive_text_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-10] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), f.to_bits());
        }
        for &f in &[0.1f32, 2.7f32, f32::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a\"b\\c\nd\te\u{1F600}é";
        let s = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        // Explicit \u escapes parse too, including surrogate pairs.
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A😀"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, -2i64), (3, -4)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, i64)>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(5u32, "five".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"5":"five"}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<u32, String>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn derived_types_round_trip() {
        #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
        struct Newtype(f64);

        #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
        enum Kind {
            Unit,
            Pair(u8, u8),
            Wrap(Newtype),
            Fields { x: i32, label: String },
        }

        #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
        struct Record {
            name: String,
            kinds: Vec<Kind>,
            opt: Option<u32>,
            arr: [usize; 3],
        }

        let r = Record {
            name: "probe".into(),
            kinds: vec![
                Kind::Unit,
                Kind::Pair(1, 2),
                Kind::Wrap(Newtype(0.1)),
                Kind::Fields {
                    x: -3,
                    label: "hi".into(),
                },
            ],
            opt: None,
            arr: [9, 8, 7],
        };
        let compact = to_string(&r).unwrap();
        assert_eq!(from_str::<Record>(&compact).unwrap(), r);
        let pretty = to_string_pretty(&r).unwrap();
        assert_eq!(from_str::<Record>(&pretty).unwrap(), r);
        // Unit variants render as plain strings (external tagging).
        assert!(compact.contains(r#""Unit""#));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
